"""Simulator engine performance: scalar vs batched across workloads.

Measures simulated throughput (domain cells per wall-clock second) of
both engines on the COSMO horizontal-diffusion program at the paper's
vectorization (W = 8), plus the configurations the batched engine v2
opened up:

* **multi-device** (fig14-style): hdiff split across 2 and 4 devices
  with a deep 64-cycle wire — exercising the lifted in-flight bound
  (batches used to cap at ~``network_latency`` cycles per plan);
* **integer programs**: an int32 smoothing chain on native int64 slabs
  (previously a scalar-engine fallback under ``engine_mode="auto"``).

The batched engine runs paper-scale domains; the scalar engine is timed
on a reduced domain (its per-cell cost is domain-independent, and the
full domain would take it tens of minutes).  Cells/second is the
comparable metric.

Results are written to ``benchmarks/BENCH_simulator.json`` so the
performance trajectory is tracked across PRs.  ``PR1_CELLS_PER_SECOND``
is the single-device throughput of the PR 1 batched engine re-measured
on this machine from its git checkout, recorded so the JSON shows the
coordinate-slab speedup of this PR.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core import StencilProgram
from repro.distributed import contiguous_device_split
from repro.programs import horizontal_diffusion
from repro.simulator import SimulatorConfig, simulate


def random_inputs(program, seed=0):
    rng = np.random.default_rng(seed)
    out = {}
    for name, spec in program.inputs.items():
        shape = spec.shape(program.shape, program.index_names)
        if spec.dtype.is_integer:
            data = rng.integers(0, 8, shape)
        else:
            data = rng.random(shape) if shape else rng.random()
        out[name] = np.asarray(data, dtype=spec.dtype.numpy)
    return out

#: The paper's performance-benchmark domain (Sec. IX) and W.
PAPER_DOMAIN = (128, 128, 80)
#: Reduced domain for timing the scalar engine.
SCALAR_DOMAIN = (24, 24, 16)
VECTORIZATION = 8

#: PR 1 batched engine, single-device paper-domain hdiff, re-measured
#: from the PR 1 checkout on the machine that produced the current
#: BENCH_simulator.json (context for the vs_pr1 row; not asserted).
PR1_CELLS_PER_SECOND = 382_037

#: Deep wire for the multi-device rows: without the lifted in-flight
#: bound every batch would cap at ~64 cycles.
NETWORK_LATENCY = 64

BENCH_FILE = Path(__file__).parent / "BENCH_simulator.json"


def _int_chain(shape):
    """An integer smoothing chain (3 stages, int32 fields): +, *, and
    min/max only, so every stream stays integer-typed."""
    program = {}
    prev = "inp"
    for stage in range(3):
        name = f"s{stage}"
        program[name] = {
            "code": (f"{prev}[i,j-1,k] + 2*{prev}[i,j,k] "
                     f"+ {prev}[i,j+1,k] - min({prev}[i,j,k], 3)"),
            "boundary_condition": {prev: {"type": "constant",
                                          "value": 1}},
        }
        prev = name
    return StencilProgram.from_json({
        "name": "int_chain",
        "inputs": {"inp": {"dtype": "int32", "dims": ["i", "j", "k"]}},
        "outputs": [prev],
        "shape": list(shape),
        "vectorization": VECTORIZATION,
        "program": program,
    })


def _run(program, engine_mode, device_of=None, latency=32):
    inputs = random_inputs(program)
    config = SimulatorConfig(engine_mode=engine_mode,
                             network_latency=latency)
    start = time.perf_counter()
    result = simulate(program, inputs, config, device_of=device_of)
    seconds = time.perf_counter() - start
    return {
        "domain": list(program.shape),
        "cells": program.num_cells,
        "seconds": round(seconds, 4),
        "cells_per_second": round(program.num_cells / seconds),
        "cycles": result.cycles,
    }, result


def _row(build, device_count=None, latency=32):
    """One benchmark row: scalar on the reduced domain, batched on the
    paper domain, plus the correctness guard on the common domain."""
    small = build(SCALAR_DOMAIN)
    large = build(PAPER_DOMAIN)
    placement = contiguous_device_split(small, device_count) \
        if device_count else None
    scalar, scalar_result = _run(small, "scalar", placement, latency)
    guard, guard_result = _run(small, "batched", placement, latency)
    assert guard_result.cycles == scalar_result.cycles
    for name, expected in scalar_result.outputs.items():
        assert np.array_equal(expected, guard_result.outputs[name],
                              equal_nan=True), name
    placement = contiguous_device_split(large, device_count) \
        if device_count else None
    batched, _ = _run(large, "batched", placement, latency)
    speedup = batched["cells_per_second"] / scalar["cells_per_second"]
    return {
        "scalar": scalar,
        "batched": batched,
        "speedup_cells_per_second": round(speedup, 1),
    }


def test_engine_throughput():
    hdiff = lambda shape: horizontal_diffusion(  # noqa: E731
        shape=shape, vectorization=VECTORIZATION)

    single = _row(hdiff)
    two_device = _row(hdiff, device_count=2, latency=NETWORK_LATENCY)
    four_device = _row(hdiff, device_count=4, latency=NETWORK_LATENCY)
    integer = _row(_int_chain)

    vs_pr1 = round(single["batched"]["cells_per_second"]
                   / PR1_CELLS_PER_SECOND, 2)
    record = {
        "workload": "horizontal_diffusion",
        "vectorization": VECTORIZATION,
        "network_latency_multi_device": NETWORK_LATENCY,
        "single_device": single,
        "two_device": two_device,
        "four_device": four_device,
        "integer_chain": integer,
        "single_device_vs_pr1": {
            "pr1_cells_per_second": PR1_CELLS_PER_SECOND,
            "cells_per_second": single["batched"]["cells_per_second"],
            "speedup": vs_pr1,
        },
    }
    BENCH_FILE.write_text(json.dumps(record, indent=2) + "\n")

    for label, row in (("1-device", single), ("2-device", two_device),
                       ("4-device", four_device),
                       ("int-chain", integer)):
        print(f"\n{label:9s}: scalar "
              f"{row['scalar']['cells_per_second']:>10,} c/s | batched "
              f"{row['batched']['cells_per_second']:>10,} c/s | "
              f"{row['speedup_cells_per_second']}x")
    print(f"single-device vs PR1 batched engine: {vs_pr1}x "
          f"(written to {BENCH_FILE.name})")

    # Acceptance bars: the batched engine stays an order of magnitude
    # ahead of scalar on a single device, the lifted in-flight bound
    # keeps deep-wire multi-device runs >= 5x scalar, and integer
    # programs actually benefit from batching.
    assert single["speedup_cells_per_second"] >= 10.0
    assert two_device["speedup_cells_per_second"] >= 5.0
    assert four_device["speedup_cells_per_second"] >= 5.0
    assert integer["speedup_cells_per_second"] >= 3.0
