"""Fig. 14 — performance scaling for single and multi-node, W = 1.

The paper chains 8-Op stencils over a 2^15 x 32 x 32 domain, growing
the chain until a single Stratix 10 is full (896 Op/cycle, 264 GOp/s),
then continues across 2/4/8 FPGAs (388/771/1537 GOp/s). We model the
same sweep with the pipeline model (Eq. 1), the resource/frequency
models, and the multi-node clock calibration.
"""

import pytest

from harness import multi_device_point, single_device_point
from paper_data import FIG14_MULTI, FIG14_SINGLE, print_table

OPS_PER_STENCIL = 8


def _sweep():
    rows = []
    measured = {}
    for ops_per_cycle, paper_gops in FIG14_SINGLE:
        stencils = ops_per_cycle // OPS_PER_STENCIL
        report = single_device_point(stencils, "jacobi3d")
        measured[ops_per_cycle] = report.gops
        rows.append((f"1 dev, {ops_per_cycle} Op/c", paper_gops,
                     round(report.gops, 1),
                     round(report.frequency_mhz, 1)))
    for devices, ops_per_cycle, paper_gops in FIG14_MULTI:
        stencils = ops_per_cycle // OPS_PER_STENCIL
        report = multi_device_point(stencils, devices, "jacobi3d")
        measured[ops_per_cycle] = report.gops
        rows.append((f"{devices} dev, {ops_per_cycle} Op/c", paper_gops,
                     round(report.gops, 1),
                     round(report.frequency_mhz, 1)))
    return rows, measured


def test_fig14_scaling(benchmark):
    rows, measured = benchmark(_sweep)
    print_table("Fig. 14: iterative stencil scaling (W = 1)",
                ("configuration", "paper GOp/s", "ours GOp/s", "f MHz"),
                rows)

    # Shape assertions: monotone scaling with the chain length.
    single = [measured[o] for o, _p in FIG14_SINGLE]
    assert all(b > a for a, b in zip(single, single[1:]))

    # Single-device points track the paper within 25%.
    for ops_per_cycle, paper in FIG14_SINGLE:
        ours = measured[ops_per_cycle]
        assert ours == pytest.approx(paper, rel=0.25), \
            f"{ops_per_cycle} Op/c: {ours:.0f} vs paper {paper}"

    # Multi-device keeps scaling: 8 FPGAs beat a single device by >4x,
    # and each doubling of the chain+devices roughly doubles GOp/s.
    assert measured[7168] > 4 * measured[896]
    for (d1, o1, _), (d2, o2, _) in zip(FIG14_MULTI, FIG14_MULTI[1:]):
        ratio = measured[o2] / measured[o1]
        assert 1.7 < ratio < 2.3

    # Multi-node points within 25% of the paper.
    for _devices, ops_per_cycle, paper in FIG14_MULTI:
        assert measured[ops_per_cycle] == pytest.approx(paper, rel=0.25)
