"""Eq. 1 — the expected-runtime model ``C = L + I*N`` vs. simulation.

Every StencilFlow architecture is fully pipelined at I = 1, so the
cycle count of a deadlock-free design should track ``L + N/W``. We run
the cycle-level simulator over a sweep of programs and domain sizes and
compare against the model: measured cycles never exceed the model
(L is computed conservatively) and converge to N/W as the domain grows
(the paper's observation that L is proportional to D-1 or fewer
dimensions and becomes negligible on large domains).
"""

import numpy as np
import pytest

from repro.analysis import analyze_buffers
from repro.core import StencilProgram
from repro.programs import build, chain
from repro.simulator import simulate

from paper_data import print_table


def _inputs(program, seed=3):
    rng = np.random.default_rng(seed)
    out = {}
    for name, spec in program.inputs.items():
        shape = spec.shape(program.shape, program.index_names)
        out[name] = rng.random(shape).astype(np.float32) if shape \
            else np.float32(rng.random())
    return out


def _cases():
    yield "chain3 8x8x8", chain(3, shape=(8, 8, 8))
    yield "chain3 8x8x8 W4", chain(3, shape=(8, 8, 8), vectorization=4)
    yield "laplace2d 24x24", build("laplace2d", shape=(24, 24))
    yield "jacobi3d 8x8x8", build("jacobi3d", shape=(8, 8, 8))
    yield "diamond 6x10x10", _diamond((6, 10, 10))


def _diamond(shape):
    return StencilProgram.from_json({
        "name": "diamond",
        "inputs": {"a": {"dtype": "float32", "dims": ["i", "j", "k"]}},
        "outputs": ["j2"],
        "shape": list(shape),
        "program": {
            "s": {"code": "a[i,j,k] * 2.0",
                  "boundary_condition": "shrink"},
            "l": {"code": "s[i,j-1,k] + s[i,j+1,k]",
                  "boundary_condition": "shrink"},
            "j2": {"code": "s[i,j,k] + l[i,j,k]",
                   "boundary_condition": "shrink"},
        },
    })


def _run_sweep():
    rows = []
    for name, program in _cases():
        result = simulate(program, _inputs(program))
        steady = program.num_cells // program.vectorization
        rows.append((name, result.expected_cycles, result.cycles,
                     steady, round(result.model_accuracy, 3)))
    return rows


def test_eq1_agreement(benchmark):
    rows = benchmark(_run_sweep)
    print_table("Eq. 1: C = L + I*N vs simulated cycles",
                ("program", "model C", "simulated", "N/W", "ratio"),
                rows)
    for name, model, simulated, steady, _ratio in rows:
        # The model upper-bounds the stall-free machine...
        assert simulated <= model, name
        # ...and the machine can never beat the steady-state bound.
        assert simulated >= steady, name
        # Agreement within 25% (L is conservative).
        assert simulated > 0.75 * model or model - simulated < 128, name


def test_eq1_latency_amortizes(benchmark):
    """L/N falls as the domain grows: larger domains raise the ratio of
    useful cycles to initialization cycles (Sec. VIII-A)."""
    def sweep():
        fractions = []
        for extent in (8, 16, 32):
            program = chain(3, shape=(extent, 8, 8))
            analysis = analyze_buffers(program)
            steady = program.num_cells
            fractions.append(analysis.pipeline_latency
                             / (analysis.pipeline_latency + steady))
        return fractions

    fractions = benchmark(sweep)
    print_table("Eq. 1: init-latency fraction vs domain size",
                ("outer extent", "L / C"),
                [(e, round(f, 4))
                 for e, f in zip((8, 16, 32), fractions)])
    assert fractions[0] > fractions[1] > fractions[2]
