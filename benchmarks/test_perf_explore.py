"""Config-parallel exploration throughput.

``explore(config_parallel=True)`` groups frontier points that lower to
the *same* program (equal family hash) and simulates the group as one
representative full run plus a width-0 control run per remaining
member — exact timing with no data movement, outputs shared from the
representative.  On network-axis sweeps (latency x rate) every point
shares the lowered program, so an N-point group costs ~one data pass
instead of N.

This benchmark sweeps a 12-point shared-program space both ways,
checks the reports are identical, and requires the stacked sweep to be
>= 3x faster wall-clock.  The result is merged into
``benchmarks/BENCH_explore.json`` under ``"config_parallel"`` so the
sweep-cost trajectory is tracked alongside the per-program sweeps.
"""

import json
import time
from pathlib import Path

from repro.explore import ConfigSpace, ResultCache, explore
from repro.programs import horizontal_diffusion

BENCH_FILE = Path(__file__).parent / "BENCH_explore.json"

SHAPE = (96, 96, 64)
VECTORIZATION = 8

#: Network-axis sweep: one lowered program, twelve machine variants.
SPACE = ConfigSpace(vectorizations=(VECTORIZATION,),
                    network_latencies=(8, 16, 24, 32, 40, 48),
                    network_rates=(1.0, 0.5))


def _sweep(program, **kwargs):
    start = time.perf_counter()
    report = explore(program, space=SPACE, strategy="exhaustive",
                     workers=1, persist=False, cache=ResultCache(),
                     **kwargs)
    return time.perf_counter() - start, report


def test_config_parallel_sweep():
    program = horizontal_diffusion(shape=SHAPE,
                                   vectorization=VECTORIZATION)
    per_point_seconds, plain = _sweep(program)
    stacked_seconds, stacked = _sweep(program, config_parallel=True)

    # The stacked sweep must be a pure optimization: identical entries.
    assert len(plain.entries) == len(stacked.entries)
    simulated = 0
    for a, b in zip(plain.entries, stacked.entries):
        assert a.point == b.point
        assert a.simulated == b.simulated
        assert a.simulated_cycles == b.simulated_cycles
        assert a.rank == b.rank
        assert a.pareto == b.pareto
        simulated += bool(a.simulated)
    assert simulated >= 8

    speedup = per_point_seconds / stacked_seconds
    record = {
        "workload": "horizontal_diffusion",
        "shape": list(SHAPE),
        "vectorization": VECTORIZATION,
        "simulated_points": simulated,
        "per_point_seconds": round(per_point_seconds, 4),
        "config_parallel_seconds": round(stacked_seconds, 4),
        "speedup": round(speedup, 1),
    }
    data = json.loads(BENCH_FILE.read_text()) \
        if BENCH_FILE.exists() else {}
    data["config_parallel"] = record
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")

    print(f"\nper-point {per_point_seconds:.2f}s | config-parallel "
          f"{stacked_seconds:.2f}s | {speedup:.1f}x "
          f"(written to {BENCH_FILE.name})")

    # PR 10 acceptance bar: >= 3x on an 8-point shared-program space.
    assert speedup >= 3.0
