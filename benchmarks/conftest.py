"""Pytest configuration for the benchmark suite."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture(autouse=True)
def _isolated_repro_cache(tmp_path, monkeypatch):
    """Keep the persistent explore cache out of benchmark measurements."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
