"""Fig. 16 — effective off-chip bandwidth vs. parallel access points.

Scalar access points saturate the Stratix 10 memory-controller crossbar
at 36.4 GB/s (47% of the 76.8 GB/s peak) past ~24 operands/cycle;
4-way vectorized access points reach 58.3 GB/s (76%). We sweep the
calibrated crossbar model over the paper's x-axis and compare both the
served bandwidth and the efficiency fractions printed on the bars.
"""

import pytest

from repro.hardware import BandwidthModel

from paper_data import (
    FIG16_SCALAR,
    FIG16_SCALAR_SATURATION,
    FIG16_VECTOR,
    FIG16_VECTOR_SATURATION,
    print_table,
)

#: The paper's bandwidth microbenchmarks run near peak clock.
FREQUENCY_MHZ = 317.0


def _sweep():
    model = BandwidthModel()
    scalar = {}
    vector = {}
    for operands, _paper_gbs, _eff in FIG16_SCALAR:
        scalar[operands] = (
            model.effective_gbs(operands, FREQUENCY_MHZ, vector_width=1),
            model.efficiency(operands, FREQUENCY_MHZ, vector_width=1),
        )
    for operands, _paper_gbs, _eff in FIG16_VECTOR:
        vector[operands] = (
            model.effective_gbs(operands, FREQUENCY_MHZ, vector_width=4),
            model.efficiency(operands, FREQUENCY_MHZ, vector_width=4),
        )
    return scalar, vector


def test_fig16_bandwidth(benchmark):
    scalar, vector = benchmark(_sweep)
    rows = []
    for operands, paper_gbs, paper_eff in FIG16_SCALAR:
        gbs, eff = scalar[operands]
        rows.append((f"scalar {operands}", paper_gbs, round(gbs, 1),
                     f"{paper_eff:.2f}", f"{eff:.2f}"))
    for operands, paper_gbs, paper_eff in FIG16_VECTOR:
        gbs, eff = vector[operands]
        rows.append((f"W=4 {operands}", paper_gbs, round(gbs, 1),
                     f"{paper_eff:.2f}", f"{eff:.2f}"))
    print_table(
        "Fig. 16: effective bandwidth (operands/cycle requested)",
        ("access points", "paper GB/s", "ours GB/s", "paper eff",
         "ours eff"), rows)

    # Absolute served bandwidth within 10% of every measured bar.
    for operands, paper_gbs, _eff in FIG16_SCALAR:
        assert scalar[operands][0] == pytest.approx(paper_gbs, rel=0.10)
    for operands, paper_gbs, _eff in FIG16_VECTOR:
        assert vector[operands][0] == pytest.approx(paper_gbs, rel=0.10)

    # Scalar saturates at ~47% of peak; vectorized at ~76%.
    model = BandwidthModel()
    big = model.effective_gbs(200, FREQUENCY_MHZ, vector_width=1)
    assert big == pytest.approx(FIG16_SCALAR_SATURATION, rel=0.02)
    big_v = model.effective_gbs(200, FREQUENCY_MHZ, vector_width=4)
    assert big_v == pytest.approx(FIG16_VECTOR_SATURATION, rel=0.02)
    assert big / 76.8 == pytest.approx(0.47, abs=0.02)
    assert big_v / 76.8 == pytest.approx(0.76, abs=0.02)

    # Efficiency is monotonically non-increasing with load, and the
    # vectorized curve dominates the scalar one at equal load.
    effs = [scalar[o][1] for o, _g, _e in FIG16_SCALAR]
    assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
    for operands, _g, _e in FIG16_SCALAR[3:]:
        assert vector[operands][0] >= scalar[operands][0]
