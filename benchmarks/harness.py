"""Shared benchmark machinery: chain scaling, device filling, and the
pinned benchmark-regression CLI the CI gate runs.

CLI usage (see ``benchmarks/README.md`` for the full contract)::

    python benchmarks/harness.py run --config benchmarks/bench_config.json \
        --output bench-result.json
    python benchmarks/harness.py check --baseline benchmarks/bench_baseline.json \
        --result bench-result.json --max-regression 0.30

``run`` executes the pinned simulator cases and records exact cycle
counts plus wall-clock throughput; ``check`` compares a result against
the committed baseline and exits nonzero on any cycle-count drift or on
a throughput regression beyond the threshold.  Throughput is compared
*normalized* by a machine-speed calibration score so the gate is robust
to CI runners of different speeds.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.distributed import (
    Partition,
    contiguous_device_split,
    partition_fixed,
)
from repro.hardware import STRATIX10, estimate_resources
from repro.lowering import default_cache as lowering_cache
from repro.perf import model_multi_device, model_performance
from repro.programs import build, chain
from repro.programs.iterative import SCALING_DOMAIN
from repro.simulator import SimulatorConfig, simulate


def single_device_point(num_stencils: int, kernel: str = "jacobi3d",
                        vectorization: int = 1,
                        ops_per_stencil: Optional[int] = None):
    """Modeled single-device performance of a chain design."""
    program = chain(num_stencils, shape=SCALING_DOMAIN, kernel=kernel,
                    vectorization=vectorization,
                    ops_per_stencil=ops_per_stencil)
    return model_performance(program, STRATIX10)


def multi_device_point(num_stencils: int, num_devices: int,
                       kernel: str = "jacobi3d", vectorization: int = 1,
                       ops_per_stencil: Optional[int] = None):
    """Modeled chain split evenly across ``num_devices`` devices."""
    program = chain(num_stencils, shape=SCALING_DOMAIN, kernel=kernel,
                    vectorization=vectorization,
                    ops_per_stencil=ops_per_stencil)
    per_device = -(-num_stencils // num_devices)
    placement = {f"s{n}": min(n // per_device, num_devices - 1)
                 for n in range(num_stencils)}
    partition = partition_fixed(program, placement)
    return model_multi_device(program, partition, STRATIX10)


def fill_device(kernel: str, vectorization: int = 1,
                ops_per_stencil: Optional[int] = None,
                shape=SCALING_DOMAIN,
                platform=STRATIX10,
                upper: int = 256) -> int:
    """Largest chain length that fits one device (the paper's method of
    growing the chain until the FPGA is fully utilized)."""
    lo, hi = 1, upper
    while lo < hi:
        mid = (lo + hi + 1) // 2
        program = chain(mid, shape=shape, kernel=kernel,
                        vectorization=vectorization,
                        ops_per_stencil=ops_per_stencil)
        if estimate_resources(program, platform).fits:
            lo = mid
        else:
            hi = mid - 1
    return lo


# -- benchmark-regression CLI (the CI gate) --------------------------------

def calibrate() -> float:
    """Machine-speed score: a fixed NumPy-plus-interpreter workload.

    The simulator's cost is a mix of NumPy slab operations and Python
    planning, so the score blends both.  Normalizing case throughput by
    this score makes the baseline comparison portable across runner
    speeds while still catching regressions in the repository's own
    code (the calibration never imports it beyond NumPy).
    """
    rng = np.random.default_rng(0)
    data = rng.random(500_000)
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        x = np.sin(data)
        x = x * data + 1.0
        total = float(x.sum())
        acc = 0
        for n in range(200_000):
            acc += n & 7
        best = min(best, time.perf_counter() - start)
        assert total == total and acc >= 0
    return 1.0 / best


def seeded_inputs(program, seed: int = 0) -> dict:
    """Deterministic random arrays for every program input (shared by
    the pinned CLI cases and the engine-throughput benchmark, so the
    two measure identical workloads)."""
    rng = np.random.default_rng(seed)
    inputs = {}
    for name, spec in program.inputs.items():
        shape = spec.shape(program.shape, program.index_names)
        if spec.dtype.is_integer:
            data = rng.integers(0, 8, shape)
        else:
            data = rng.random(shape) if shape else rng.random()
        inputs[name] = np.asarray(data, dtype=spec.dtype.numpy)
    return inputs


def run_case(case: dict, repeats: int = 3) -> dict:
    """Run one pinned simulator case, returning exact cycles and the
    best-of-``repeats`` wall-clock throughput."""
    program = build(case["program"], shape=tuple(case["shape"]),
                    vectorization=case.get("vectorization", 1))
    inputs = seeded_inputs(program, case.get("seed", 0))
    devices = case.get("devices", 1)
    device_of = contiguous_device_split(program, devices) \
        if devices > 1 else None
    config = SimulatorConfig(
        engine_mode=case.get("engine_mode", "batched"),
        network_words_per_cycle=case.get("network_words_per_cycle", 1.0),
        network_latency=case.get("network_latency", 32))
    best = float("inf")
    cycles = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = simulate(program, inputs, config, device_of=device_of)
        best = min(best, time.perf_counter() - start)
        if cycles is None:
            cycles = result.cycles
        elif cycles != result.cycles:
            raise AssertionError(
                f"case {case['name']!r}: nondeterministic cycle count "
                f"({cycles} vs {result.cycles})")
    return {
        "cells": program.num_cells,
        "cycles": cycles,
        "seconds": round(best, 4),
        "cells_per_second": round(program.num_cells / best, 1),
    }


def run_config(config_path: Path, slowdown: float = 1.0) -> dict:
    config = json.loads(config_path.read_text())
    cases = {}
    scores = []
    artifacts = lowering_cache()
    hits0, misses0 = artifacts.stats()
    kinds0 = artifacts.stats_by_kind()
    for case in config["cases"]:
        # Calibrate immediately before each case: machine-load noise is
        # time-correlated, so a fresh score tracks it far better than
        # one global measurement.
        score = calibrate()
        scores.append(score)
        measured = run_case(case, repeats=config.get("repeats", 3))
        if slowdown != 1.0:
            # Test hook for the CI gate itself: report the throughput a
            # `slowdown`-times-slower run would have produced.
            measured["cells_per_second"] = round(
                measured["cells_per_second"] / slowdown, 1)
            measured["synthetic_slowdown"] = slowdown
        measured["normalized_throughput"] = round(
            measured["cells_per_second"] / score, 3)
        cases[case["name"]] = measured
        print(f"  {case['name']}: {measured['cycles']} cycles, "
              f"{measured['cells_per_second']:,.0f} cells/s "
              f"(normalized {measured['normalized_throughput']})")
    # Delta against the start of this call: run_config may run several
    # times per process (the `baseline` rounds), and cumulative
    # process-lifetime counters would misattribute earlier rounds.
    hits1, misses1 = artifacts.stats()
    hits, misses = hits1 - hits0, misses1 - misses0
    deltas = {}
    for kind, (h, m) in artifacts.stats_by_kind().items():
        h0, m0 = kinds0.get(kind, (0, 0))
        if (h - h0) or (m - m0):
            deltas[kind] = (h - h0, m - m0)
    per_kind = ", ".join(f"{kind} {h}/{h + m}"
                         for kind, (h, m) in deltas.items())
    print(f"  artifact cache: {misses} artifacts built, {hits} hits "
          f"(hit/lookup by kind: {per_kind})")
    return {"calibration_score": round(sum(scores) / len(scores), 2),
            "cases": cases,
            "artifact_cache": {"hits": hits, "misses": misses}}


def check_result(baseline: dict, result: dict,
                 max_regression: float) -> List[str]:
    """The baseline-comparison contract enforced by CI: every baseline
    case must be present, cycle counts must match *exactly* (they are
    machine-independent), and normalized throughput must not regress
    by more than ``max_regression``."""
    failures = []
    for name, expected in baseline["cases"].items():
        measured = result["cases"].get(name)
        if measured is None:
            failures.append(f"{name}: missing from result")
            continue
        if measured["cycles"] != expected["cycles"]:
            failures.append(
                f"{name}: cycle-count drift — baseline "
                f"{expected['cycles']}, measured {measured['cycles']}")
        floor = expected["normalized_throughput"] * (1.0 - max_regression)
        if measured["normalized_throughput"] < floor:
            ratio = (measured["normalized_throughput"]
                     / expected["normalized_throughput"])
            failures.append(
                f"{name}: throughput regression — normalized "
                f"{measured['normalized_throughput']} vs baseline "
                f"{expected['normalized_throughput']} "
                f"({ratio:.2f}x, floor {1.0 - max_regression:.2f}x)")
    return failures


def make_baseline(config_path: Path, rounds: int) -> dict:
    """Run the config ``rounds`` times and keep, per case, the exact
    cycle count and the *minimum* normalized throughput observed — a
    conservative floor, so machine noise above the floor never fails
    the gate while a real >threshold regression still does."""
    record = run_config(config_path)
    for _ in range(rounds - 1):
        print("  --")
        again = run_config(config_path)
        for name, case in record["cases"].items():
            other = again["cases"][name]
            if other["cycles"] != case["cycles"]:
                raise AssertionError(
                    f"case {name!r}: nondeterministic cycle count")
            if (other["normalized_throughput"]
                    < case["normalized_throughput"]):
                record["cases"][name] = other
    record["baseline_rounds"] = rounds
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Pinned benchmark runner and regression gate")
    sub = parser.add_subparsers(dest="command", required=True)
    runner = sub.add_parser("run", help="run the pinned benchmark config")
    runner.add_argument("--config", type=Path, required=True)
    runner.add_argument("--output", type=Path, required=True)
    runner.add_argument(
        "--synthetic-slowdown", type=float, default=1.0,
        help="divide measured throughput by this factor (gate-testing "
             "hook: a value of 2.0 must make `check` fail)")
    refresher = sub.add_parser(
        "baseline",
        help="refresh the committed baseline (several rounds, keeping "
             "the most conservative throughput floor per case)")
    refresher.add_argument("--config", type=Path, required=True)
    refresher.add_argument("--output", type=Path, required=True)
    refresher.add_argument("--rounds", type=int, default=3)
    checker = sub.add_parser(
        "check", help="compare a result against the committed baseline")
    checker.add_argument("--baseline", type=Path, required=True)
    checker.add_argument("--result", type=Path, required=True)
    checker.add_argument("--max-regression", type=float, default=0.30)
    args = parser.parse_args(argv)

    if args.command == "run":
        record = run_config(args.config, slowdown=args.synthetic_slowdown)
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")
        return 0

    if args.command == "baseline":
        record = make_baseline(args.config, args.rounds)
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")
        return 0

    baseline = json.loads(args.baseline.read_text())
    result = json.loads(args.result.read_text())
    failures = check_result(baseline, result, args.max_regression)
    if failures:
        print("benchmark regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"benchmark regression check passed "
          f"({len(baseline['cases'])} cases, cycle counts exact, "
          f"throughput within {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
