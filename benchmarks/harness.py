"""Shared benchmark machinery: chain scaling and device filling."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.distributed import Partition, partition_fixed
from repro.hardware import STRATIX10, estimate_resources
from repro.perf import model_multi_device, model_performance
from repro.programs import chain
from repro.programs.iterative import SCALING_DOMAIN


def single_device_point(num_stencils: int, kernel: str = "jacobi3d",
                        vectorization: int = 1,
                        ops_per_stencil: Optional[int] = None):
    """Modeled single-device performance of a chain design."""
    program = chain(num_stencils, shape=SCALING_DOMAIN, kernel=kernel,
                    vectorization=vectorization,
                    ops_per_stencil=ops_per_stencil)
    return model_performance(program, STRATIX10)


def multi_device_point(num_stencils: int, num_devices: int,
                       kernel: str = "jacobi3d", vectorization: int = 1,
                       ops_per_stencil: Optional[int] = None):
    """Modeled chain split evenly across ``num_devices`` devices."""
    program = chain(num_stencils, shape=SCALING_DOMAIN, kernel=kernel,
                    vectorization=vectorization,
                    ops_per_stencil=ops_per_stencil)
    per_device = -(-num_stencils // num_devices)
    placement = {f"s{n}": min(n // per_device, num_devices - 1)
                 for n in range(num_stencils)}
    partition = partition_fixed(program, placement)
    return model_multi_device(program, partition, STRATIX10)


def fill_device(kernel: str, vectorization: int = 1,
                ops_per_stencil: Optional[int] = None,
                shape=SCALING_DOMAIN,
                platform=STRATIX10,
                upper: int = 256) -> int:
    """Largest chain length that fits one device (the paper's method of
    growing the chain until the FPGA is fully utilized)."""
    lo, hi = 1, upper
    while lo < hi:
        mid = (lo + hi + 1) // 2
        program = chain(mid, shape=shape, kernel=kernel,
                        vectorization=vectorization,
                        ops_per_stencil=ops_per_stencil)
        if estimate_resources(program, platform).fits:
            lo = mid
        else:
            hi = mid - 1
    return lo
