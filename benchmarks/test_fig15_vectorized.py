"""Fig. 15 — performance scaling with 4-way vectorization.

24-Op stencils at W = 4 over the 2^15 x 32 x 32 domain: the paper
reaches 568 GOp/s on one device and 1129/2287/4178 GOp/s on 2/4/8.
Vectorization coarsens the stencil nodes (more useful ops per unit of
pipeline overhead), which is what pushes utilization — and performance
— past the scalar experiment.

Note on fidelity: the paper's measured single-node bars fall below its
own Eq. 1 upper bound at high Op/cycle (568 GOp/s at 3072 Op/cycle
implies ~185 MHz, while Tab. I designs of similar size close at
~300 MHz). Our model follows Eq. 1 with the calibrated frequency curve,
so it tracks the paper's dashed upper-bound line; we therefore assert
shape (monotonicity, the vectorization win, multi-node scaling ratios)
and compare multi-node points, where the calibrated 215 MHz clock
applies, more tightly.
"""

import pytest

from harness import multi_device_point, single_device_point
from paper_data import FIG15_MULTI, FIG15_SINGLE, print_table

OPS_PER_STENCIL = 24
WIDTH = 4


def _sweep():
    rows = []
    measured = {}
    for ops_per_cycle, paper_gops in FIG15_SINGLE:
        stencils = ops_per_cycle // (OPS_PER_STENCIL * WIDTH)
        report = single_device_point(stencils, "dense",
                                     vectorization=WIDTH,
                                     ops_per_stencil=OPS_PER_STENCIL)
        measured[ops_per_cycle] = report.gops
        rows.append((f"1 dev, {ops_per_cycle} Op/c", paper_gops,
                     round(report.gops, 1),
                     round(report.frequency_mhz, 1)))
    for devices, ops_per_cycle, paper_gops in FIG15_MULTI:
        stencils = ops_per_cycle // (OPS_PER_STENCIL * WIDTH)
        report = multi_device_point(stencils, devices, "dense",
                                    vectorization=WIDTH,
                                    ops_per_stencil=OPS_PER_STENCIL)
        measured[ops_per_cycle] = report.gops
        rows.append((f"{devices} dev, {ops_per_cycle} Op/c", paper_gops,
                     round(report.gops, 1),
                     round(report.frequency_mhz, 1)))
    return rows, measured


def test_fig15_vectorized(benchmark):
    rows, measured = benchmark(_sweep)
    print_table("Fig. 15: iterative stencil scaling (W = 4)",
                ("configuration", "paper GOp/s", "ours GOp/s", "f MHz"),
                rows)

    single = [measured[o] for o, _p in FIG15_SINGLE]
    assert all(b > a for a, b in zip(single, single[1:]))

    # Vectorization is the point of this figure: the W=4 sweep's top
    # point beats the best scalar single-device result (264 GOp/s).
    assert measured[3072] > 264

    # Multi-node scaling ratios ~2x per doubling, as in the paper
    # (1129 -> 2287 -> 4178).
    for (d1, o1, _), (d2, o2, _) in zip(FIG15_MULTI, FIG15_MULTI[1:]):
        ratio = measured[o2] / measured[o1]
        assert 1.7 < ratio < 2.3

    # Multi-node absolute points within 35% of the paper.
    for _devices, ops_per_cycle, paper in FIG15_MULTI:
        assert measured[ops_per_cycle] == pytest.approx(paper, rel=0.35)

    # 8-FPGA point lands in the paper's headline territory (~4.2 TOp/s).
    assert 2800 < measured[24576] < 6000
