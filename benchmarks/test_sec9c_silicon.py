"""Sec. IX-C — silicon efficiency of the horizontal-diffusion run.

GOp/s per mm^2 of die: Stratix 10 (700 mm^2, Intel 14 nm) at 0.21
memory-bound and 0.71 without the memory bottleneck; P100 (610 mm^2,
TSMC 16 nm) at 0.34; V100 (815 mm^2, TSMC 12 nm) at 1.04.
"""

import pytest

from repro.perf import hdiff_comparison_table
from repro.programs import horizontal_diffusion

from paper_data import SEC9C, print_table

_KEYS = ["stratix10", "stratix10_inf", "xeon", "p100", "v100"]


def _run():
    program = horizontal_diffusion(vectorization=8)
    table = hdiff_comparison_table(program)
    return dict(zip(_KEYS, table))


def test_sec9c_silicon(benchmark):
    by_key = benchmark(_run)
    rows = []
    for key, paper in SEC9C.items():
        ours = by_key[key].silicon_efficiency
        rows.append((by_key[key].platform[:34], paper, round(ours, 2)))
    print_table("Sec. IX-C: silicon efficiency [GOp/s per mm^2]",
                ("platform", "paper", "ours"), rows)

    for key, paper in SEC9C.items():
        ours = by_key[key].silicon_efficiency
        assert paper / 1.6 < ours < paper * 1.6, \
            f"{key}: {ours:.2f} vs paper {paper}"

    # Orderings: V100 is the most silicon-efficient; removing the
    # memory bottleneck brings the FPGA past the P100.
    eff = {k: by_key[k].silicon_efficiency for k in SEC9C}
    assert eff["v100"] == max(eff.values())
    assert eff["stratix10_inf"] > eff["p100"] > eff["stratix10"]
