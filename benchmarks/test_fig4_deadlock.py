"""Fig. 4 — deadlock prevention by delay-buffer injection.

A reconvergent fork-join (the paper's A/B/C example) deadlocks without
buffering: C waits on B (empty), B waits on A (empty), and A waits on C
to accept data (full). Injecting the analysis-computed credits on the
fast edge makes the design stream continuously. This benchmark runs
both machines in the cycle-level simulator and additionally measures
how tight the computed buffer is: capacities one word below the
analysis requirement must deadlock.
"""

import numpy as np
import pytest

from repro.analysis import analyze_buffers, required_capacities
from repro.core import StencilProgram
from repro.errors import DeadlockError
from repro.graph import StencilGraph
from repro.simulator import SimulatorConfig, simulate

from paper_data import print_table

SHAPE = (4, 12, 12)


def _abc_program() -> StencilProgram:
    """A feeds both B and C; C joins A and B (Fig. 4 shape)."""
    return StencilProgram.from_json({
        "name": "fig4",
        "inputs": {"inp": {"dtype": "float32", "dims": ["i", "j", "k"]}},
        "outputs": ["c"],
        "shape": list(SHAPE),
        "program": {
            "a": {"code": "inp[i,j,k] + 1.0",
                  "boundary_condition": "shrink"},
            "b": {"code": "a[i,j-1,k] + a[i,j+1,k]",
                  "boundary_condition": "shrink"},
            "c": {"code": "a[i,j,k] + b[i,j,k]",
                  "boundary_condition": "shrink"},
        },
    })


def _edge_keys(program):
    return [(e.src, e.dst, e.data) for e in StencilGraph(program).edges]


def _inputs():
    rng = np.random.default_rng(7)
    return {"inp": rng.random(SHAPE, dtype=np.float32)}


def _run_experiment():
    program = _abc_program()
    inputs = _inputs()
    analysis = analyze_buffers(program)
    required = required_capacities(analysis)
    fast_edge = ("stencil:a", "stencil:c", "a")

    # 1. Without buffering: minimal channels everywhere -> deadlock.
    starved = SimulatorConfig(
        channel_capacities={k: 2 for k in _edge_keys(program)},
        deadlock_window=64)
    deadlocked_at = None
    try:
        simulate(program, inputs, starved)
    except DeadlockError as error:
        deadlocked_at = error.cycle

    # 2. With the computed delay buffers: streams continuously.
    good = simulate(program, inputs)

    # 3. Tightness: bisect the smallest fast-edge capacity that avoids
    #    deadlock, and check the analysis requirement is a (slightly
    #    conservative) upper bound on it. The analysis sizes buffers
    #    from the *full* internal buffer span (Sec. IV-A's B), while the
    #    machine strictly needs only the forward read-ahead, so the
    #    threshold falls at or below the computed requirement.
    need = required[fast_edge]

    def completes(capacity: int) -> bool:
        caps = {k: 2 for k in _edge_keys(program)}
        caps[fast_edge] = capacity
        try:
            simulate(program, inputs, SimulatorConfig(
                channel_capacities=caps, deadlock_window=64))
            return True
        except DeadlockError:
            return False

    lo, hi = 1, need + 8
    while lo < hi:
        mid = (lo + hi) // 2
        if completes(mid):
            hi = mid
        else:
            lo = mid + 1
    threshold = lo

    # 4. With the computed delay buffers everywhere: streams continuously.
    good = simulate(program, inputs)
    return deadlocked_at, good, need, threshold


def test_fig4_deadlock(benchmark):
    deadlocked_at, good, need, threshold = benchmark(_run_experiment)
    print_table(
        "Fig. 4: deadlock freedom via delay buffers",
        ("scenario", "outcome"),
        [
            ("no buffering", f"deadlock at cycle {deadlocked_at}"),
            ("computed buffers",
             f"completed in {good.cycles} cycles, continuous = "
             f"{all(good.output_continuous.values())}"),
            ("analysis credits on fast edge", need),
            ("smallest deadlock-free capacity", threshold),
        ])

    assert deadlocked_at is not None, "starved channels must deadlock"
    assert all(good.output_continuous.values())
    assert all(good.stencil_continuous.values())
    assert need > 0
    # The analysis requirement is sufficient (threshold <= need + small
    # scheduling slack) and not wildly conservative.
    assert threshold <= need + 4
    assert threshold >= need // 4
    # Capacities strictly below the threshold deadlock by construction
    # of the bisection; re-confirm one point for the record.
    if threshold > 1:
        program = _abc_program()
        fast_edge = ("stencil:a", "stencil:c", "a")
        caps = {k: 2 for k in _edge_keys(program)}
        caps[fast_edge] = threshold - 1
        with pytest.raises(DeadlockError):
            simulate(program, _inputs(), SimulatorConfig(
                channel_capacities=caps, deadlock_window=64))
