"""Tab. I — highest performing kernels and their resource usage.

The paper reports its best bitstreams per kernel with their ALM / FF /
M20K / DSP usage. We rebuild each configuration as a chain sized to the
paper's DSP budget (DSPs per stencil are unambiguous: one hardened FP32
DSP per add/mul), run the resource estimator and pipeline model, and
compare utilization and GOp/s.
"""

import pytest

from repro.hardware import STRATIX10, estimate_resources
from repro.perf import model_performance
from repro.programs import chain

from paper_data import TAB1, TAB1_AVAILABLE, print_table

#: kernel -> (builder kwargs, chain length). Jacobi lengths are pinned
#: by the paper's DSP counts (one hardened FP32 DSP per add/mul:
#: 784 DSPs / 8 ops = 98 stencils; 3072 / 64 = 48). The diffusion rows
#: are sized to the paper's delivered op rate (GOp/s / clock) — its op
#: accounting for those kernels packs more work per DSP than our
#: 9/13-op kernels, so the DSP columns differ while the op rate and
#: performance match.
CONFIGS = {
    "jacobi3d_w1": (dict(kernel="jacobi3d", vectorization=1,
                         shape=(1 << 15, 32, 32)), 98),
    "jacobi3d_w8": (dict(kernel="jacobi3d", vectorization=8,
                         shape=(1 << 15, 32, 32)), 48),
    "diffusion2d_w8": (dict(kernel="diffusion2d", vectorization=8,
                            shape=(1 << 13, 4096)), 62),
    "diffusion3d_w8": (dict(kernel="diffusion3d", vectorization=8,
                            shape=(4096, 64, 64)), 38),
}


def _run_all():
    results = {}
    for name, (kwargs, stencils) in CONFIGS.items():
        program = chain(stencils, **kwargs)
        estimate = estimate_resources(program, STRATIX10)
        report = model_performance(program, STRATIX10)
        results[name] = (report, estimate)
    return results


def test_tab1_kernels(benchmark):
    results = benchmark(_run_all)
    rows = []
    for name, (paper_gops, p_alm, p_ff, p_m20k, p_dsp) in TAB1.items():
        report, estimate = results[name]
        design = estimate.design
        rows.append((
            name,
            f"{paper_gops} / {report.gops:.0f}",
            f"{p_alm // 1000}K / {design.alm / 1e3:.0f}K",
            f"{p_ff // 1000}K / {design.ff / 1e3:.0f}K",
            f"{p_m20k} / {design.m20k:.0f}",
            f"{p_dsp} / {design.dsp:.0f}",
        ))
    print_table(
        "Tab. I: best kernels, paper / ours",
        ("kernel", "GOp/s", "ALM", "FF", "M20K", "DSP"), rows)

    for name, (paper_gops, p_alm, p_ff, p_m20k, p_dsp) in TAB1.items():
        report, estimate = results[name]
        design = estimate.design
        # Jacobi DSP counts are pinned by construction.
        if name.startswith("jacobi"):
            assert design.dsp == pytest.approx(p_dsp, rel=0.01), name
        # Everything fits on the device.
        assert estimate.fits, name
        # Performance within a factor of 1.5 of the paper's bitstream.
        assert paper_gops / 1.5 < report.gops < paper_gops * 1.5, \
            f"{name}: {report.gops:.0f} vs {paper_gops}"
        # Soft-logic usage lands in the paper's utilization band
        # (within a factor of 2 on ALMs).
        assert p_alm / 2 < design.alm < p_alm * 2, name

    # Ordering shapes from the paper: W=8 Jacobi beats W=1 Jacobi by
    # ~3.5x; Diffusion 2D (W=8) is the overall winner.
    gops = {name: results[name][0].gops for name in TAB1}
    assert gops["jacobi3d_w8"] > 2.5 * gops["jacobi3d_w1"]
    assert gops["diffusion2d_w8"] == max(gops.values())

    # The W=1 kernel underuses DSPs (17.6% in the paper); W=8 pushes
    # toward the compute bound (68.8%).
    util_w1 = results["jacobi3d_w1"][1].utilization.dsp
    util_w8 = results["jacobi3d_w8"][1].utilization.dsp
    assert util_w1 < 0.25
    assert util_w8 > 0.5
