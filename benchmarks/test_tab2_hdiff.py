"""Tab. II — horizontal diffusion on Stratix 10, Xeon, P100, V100.

The COSMO horizontal-diffusion program (128 x 128 x 80, FP32, W = 8;
W = 16 for the simulated-infinite-memory variant) is bandwidth-bound on
the Stratix 10. The FPGA rows come from our pipeline + crossbar models;
the CPU/GPU rows are roofline machines at the paper's measured
efficiency fractions (see DESIGN.md substitutions).
"""

import pytest

from repro.perf import hdiff_comparison_table
from repro.programs import horizontal_diffusion

from paper_data import TAB2, print_table

_KEYS = ["stratix10", "stratix10_inf", "xeon", "p100", "v100"]


def _run():
    program = horizontal_diffusion(vectorization=8)
    return hdiff_comparison_table(program)


def test_tab2_hdiff(benchmark):
    results = benchmark(_run)
    by_key = dict(zip(_KEYS, results))

    rows = []
    for key in _KEYS:
        paper_rt, paper_gops, paper_bw, paper_roof = TAB2[key]
        ours = by_key[key]
        roof = f"{ours.roof_fraction:.0%}" if ours.roof_fraction else "-"
        paper_roof_text = f"{paper_roof:.0%}" if paper_roof else "-"
        rows.append((ours.platform[:34],
                     paper_rt, round(ours.runtime_us),
                     paper_gops, round(ours.gops),
                     paper_roof_text, roof))
    print_table(
        "Tab. II: horizontal diffusion, paper vs ours",
        ("platform", "paper us", "ours us", "paper GOp/s", "ours GOp/s",
         "paper %roof", "ours %roof"), rows)

    # Absolute agreement: every row within a factor of 2 of the paper
    # (FPGA rows considerably closer).
    for key in _KEYS:
        paper_rt = TAB2[key][0]
        ours = by_key[key].runtime_us
        assert paper_rt / 2 < ours < paper_rt * 2, \
            f"{key}: {ours:.0f} us vs paper {paper_rt}"
    assert by_key["stratix10"].runtime_us == pytest.approx(1178, rel=0.1)
    assert by_key["stratix10"].gops == pytest.approx(145, rel=0.1)

    # The ordering story of the paper: V100 fastest, then (infinite-BW
    # FPGA beats P100), P100, memory-bound FPGA, Xeon slowest.
    gops = {k: by_key[k].gops for k in _KEYS}
    assert gops["v100"] == max(gops.values())
    assert gops["stratix10_inf"] > gops["p100"]
    assert gops["stratix10_inf"] < gops["v100"]
    assert gops["stratix10"] > 4 * gops["xeon"]
    assert gops["p100"] > gops["stratix10"]

    # The FPGA achieves the highest fraction of its own roofline.
    fractions = {k: by_key[k].roof_fraction for k in _KEYS
                 if by_key[k].roof_fraction}
    assert max(fractions, key=fractions.get) == "stratix10"
    assert by_key["stratix10"].roof_fraction == pytest.approx(0.52,
                                                              abs=0.05)
