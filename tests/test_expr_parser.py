"""Unit tests for the expression lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.expr import (
    BinaryOp,
    Call,
    FieldAccess,
    IndexVar,
    Literal,
    Ternary,
    UnaryOp,
    parse,
    unparse,
)
from repro.expr import lexer


class TestLexer:
    def test_kinds(self):
        kinds = [t.kind for t in lexer.tokenize("a[i-1] + 2.5")]
        assert kinds == ["NAME", "LBRACKET", "NAME", "OP", "NUMBER",
                         "RBRACKET", "OP", "NUMBER", "EOF"]

    def test_multichar_operators(self):
        texts = [t.text for t in lexer.tokenize("a<=b && c!=d || !e")][:-1]
        assert texts == ["a", "<=", "b", "&&", "c", "!=", "d", "||",
                         "!", "e"]

    def test_scientific_notation(self):
        tokens = lexer.tokenize("1.5e-3 + 2E4")
        assert tokens[0].text == "1.5e-3"
        assert tokens[2].text == "2E4"

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            lexer.tokenize("a @ b")

    def test_positions(self):
        tokens = lexer.tokenize("ab + cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3
        assert tokens[2].position == 5


class TestParserBasics:
    def test_literal_int(self):
        assert parse("42") == Literal(42)

    def test_literal_float(self):
        assert parse("0.5") == Literal(0.5)

    def test_index_var(self):
        assert parse("i") == IndexVar("i")

    def test_scalar_field(self):
        assert parse("alpha") == FieldAccess("alpha", (), ())

    def test_simple_access(self):
        node = parse("a[i, j, k]")
        assert node == FieldAccess("a", (0, 0, 0), ("i", "j", "k"))

    def test_offset_access(self):
        node = parse("a[i-1, j, k+2]")
        assert node == FieldAccess("a", (-1, 0, 2), ("i", "j", "k"))

    def test_lower_dim_access(self):
        node = parse("a2[i, k]")
        assert node == FieldAccess("a2", (0, 0), ("i", "k"))

    def test_bare_integer_subscripts(self):
        node = parse("a[0, -1, 2]")
        assert node == FieldAccess("a", (0, -1, 2), ("i", "j", "k"))


class TestPrecedence:
    def test_mul_binds_tighter(self):
        node = parse("1 + 2 * 3")
        assert node == BinaryOp("+", Literal(1),
                                BinaryOp("*", Literal(2), Literal(3)))

    def test_parentheses(self):
        node = parse("(1 + 2) * 3")
        assert node == BinaryOp("*", BinaryOp("+", Literal(1), Literal(2)),
                                Literal(3))

    def test_left_associativity(self):
        node = parse("1 - 2 - 3")
        assert node == BinaryOp("-", BinaryOp("-", Literal(1), Literal(2)),
                                Literal(3))

    def test_comparison_below_arithmetic(self):
        node = parse("1 + 2 < 3 * 4")
        assert isinstance(node, BinaryOp)
        assert node.op == "<"

    def test_logical_below_comparison(self):
        node = parse("1 < 2 && 3 > 4")
        assert node.op == "&&"

    def test_ternary_lowest(self):
        node = parse("a[i] > 0 ? 1 : 2")
        assert isinstance(node, Ternary)

    def test_nested_ternary_right_assoc(self):
        node = parse("a[i]>0 ? 1 : a[i]<0 ? -1 : 0")
        assert isinstance(node, Ternary)
        assert isinstance(node.orelse, Ternary)

    def test_unary_minus(self):
        node = parse("-a[i]")
        assert node == UnaryOp("-", FieldAccess("a", (0,), ("i",)))

    def test_unary_plus_is_noop(self):
        assert parse("+a[i]") == FieldAccess("a", (0,), ("i",))


class TestCalls:
    def test_unary_function(self):
        node = parse("sqrt(a[i])")
        assert node == Call("sqrt", (FieldAccess("a", (0,), ("i",)),))

    def test_binary_function(self):
        node = parse("max(a[i], 0)")
        assert isinstance(node, Call)
        assert node.func == "max"

    def test_unknown_function(self):
        with pytest.raises(ParseError, match="unknown function"):
            parse("frobnicate(a[i])")

    def test_wrong_arity(self):
        with pytest.raises(ParseError, match="expects 2"):
            parse("max(a[i])")


class TestDeclarationChecks:
    FIELDS = {"a": ("i", "j", "k"), "a2": ("i", "k"), "c": ()}

    def test_matching_dims_ok(self):
        parse("a[i,j,k] + a2[i,k] + c", self.FIELDS)

    def test_wrong_dims_rejected(self):
        with pytest.raises(ParseError, match="declared over dims"):
            parse("a2[i,j]", self.FIELDS)

    def test_bare_nonscalar_rejected(self):
        with pytest.raises(ParseError, match="must be\\s+be accessed|must "
                           "be accessed"):
            parse("a + 1", self.FIELDS)

    def test_unknown_index_rejected(self):
        with pytest.raises(ParseError, match="not an iteration index"):
            parse("a[x, j, k]")

    def test_2d_iteration_space(self):
        node = parse("a[i, j-1]", index_names=("i", "j"))
        assert node == FieldAccess("a", (0, -1), ("i", "j"))

    def test_too_many_bare_subscripts(self):
        with pytest.raises(ParseError, match="too many subscripts"):
            parse("a[0, 0, 0]", index_names=("i", "j"))


class TestErrors:
    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("(a[i] + 1")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("a[i] + 1 )")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse("a[i] +")

    def test_noninteger_offset(self):
        with pytest.raises(ParseError, match="integer"):
            parse("a[i+1.5]")

    def test_error_carries_position(self):
        try:
            parse("a[i] + @")
        except ParseError as exc:
            assert exc.position == 7
        else:
            pytest.fail("expected ParseError")


class TestRoundTrip:
    CASES = [
        "a[i, j, k]",
        "(a[i-1, j, k] + a[i+1, j, k])",
        "0.5",
        "sqrt((a[i, j, k] * a[i, j, k]))",
        "(a[i, j, k] > 0.0 ? a[i, j, k] : (-a[i, j, k]))",
        "max(a[i, j, k], b[i, j, k])",
        "((a[i, j, k] < 1.0) && (b[i, j, k] > 2.0))",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_parse_unparse_parse(self, source):
        first = parse(source)
        assert parse(unparse(first)) == first
