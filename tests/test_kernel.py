"""The compiled-kernel engine: cache behaviour, invalidation,
quarantine, backend ladder, and error parity.

Bitwise equivalence of the kernel engine against the batched engine is
enforced in ``test_engine_equivalence.py``; this file covers the
artifact life cycle — a cold run records and compiles, a warm run
replays without planning, a changed machine recompiles, a corrupt
artifact is quarantined and rebuilt — plus the failure modes the
replay path must reproduce faithfully.
"""

import json

import numpy as np
import pytest

from repro.errors import SimulationError, ValidationError
from repro.programs import build
from repro.simulator import (
    SimulatorConfig,
    kernel_available,
    kernel_cache_stats,
    kernel_store_dir,
    reset_kernel_cache_stats,
    simulate,
)
from repro.simulator.kernel import KERNEL_BACKEND_ENV
from util import lst1_inputs, lst1_program, random_inputs


def _kernel_cfg(**kwargs):
    return SimulatorConfig(engine_mode="kernel", **kwargs)


def _artifacts():
    store = kernel_store_dir()
    if not store.is_dir():
        return []
    return sorted(p for p in store.iterdir()
                  if p.suffix == ".json" and ".corrupt-" not in p.name)


def _drop_in_process_artifacts():
    """Forget in-process compiled kernels.

    The lowering ``ArtifactCache`` is process-wide and content-
    addressed, so a kernel compiled by an earlier test would be a
    legitimate in-memory hit here; dropping it forces the disk path
    this file is exercising."""
    from repro.lowering import default_cache
    default_cache().clear()


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_kernel_cache_stats()
    _drop_in_process_artifacts()
    yield
    reset_kernel_cache_stats()


def test_cold_then_warm_hit_and_stats():
    program = build("laplace2d", shape=(16, 16))
    inputs = random_inputs(program)
    cold = simulate(program, inputs, _kernel_cfg())
    assert kernel_cache_stats() == (0, 1)
    assert len(_artifacts()) == 1
    assert cold.profile.engine == "kernel"
    assert not cold.profile.kernel_cached
    warm = simulate(program, inputs, _kernel_cfg())
    assert kernel_cache_stats() == (1, 1)
    assert warm.profile.engine == "kernel"
    assert warm.profile.kernel_cached
    assert warm.profile.kernel_slabs > 0
    assert warm.profile.plan_count == 0
    assert warm.profile.window_count == 0
    assert warm.cycles == cold.cycles
    for name in cold.outputs:
        assert np.array_equal(cold.outputs[name], warm.outputs[name],
                              equal_nan=True)


def test_invalidation_program_change_recompiles():
    a = build("laplace2d", shape=(16, 16))
    b = build("jacobi2d", shape=(16, 16))
    simulate(a, random_inputs(a), _kernel_cfg())
    assert kernel_cache_stats() == (0, 1)
    simulate(b, random_inputs(b), _kernel_cfg())
    # A different program misses; the same program again hits.
    assert kernel_cache_stats() == (0, 2)
    assert len(_artifacts()) == 2
    simulate(a, random_inputs(a), _kernel_cfg())
    assert kernel_cache_stats() == (1, 2)


def test_invalidation_machine_change_recompiles():
    program = lst1_program((8, 8, 8))
    inputs = lst1_inputs((8, 8, 8))
    names = [s.name for s in program.stencils]
    device_of = {n: (0 if i < len(names) // 2 else 1)
                 for i, n in enumerate(names)}
    simulate(program, inputs, _kernel_cfg(network_latency=8),
             device_of)
    simulate(program, inputs, _kernel_cfg(network_latency=16),
             device_of)
    # Different network latency is a different machine: two artifacts.
    assert kernel_cache_stats() == (0, 2)
    simulate(program, inputs, _kernel_cfg(network_latency=8),
             device_of)
    assert kernel_cache_stats() == (1, 2)


def test_max_cycles_excluded_from_key():
    program = build("laplace2d", shape=(16, 16))
    inputs = random_inputs(program)
    simulate(program, inputs, _kernel_cfg())
    # The cycle cap is an observer knob, not machine structure: a
    # generous cap still hits the cached kernel.
    warm = simulate(program, inputs, _kernel_cfg(max_cycles=10 ** 9))
    assert kernel_cache_stats() == (1, 1)
    assert warm.profile.kernel_cached
    # A cap below the recorded cycle count raises exactly as a live
    # run would have.
    with pytest.raises(SimulationError, match="exceeded"):
        simulate(program, inputs, _kernel_cfg(max_cycles=10))


def test_corrupt_artifact_quarantined_and_rebuilt():
    program = build("laplace2d", shape=(16, 16))
    inputs = random_inputs(program)
    cold = simulate(program, inputs, _kernel_cfg())
    (path,) = _artifacts()
    path.write_text("{not json")
    _drop_in_process_artifacts()
    rerun = simulate(program, inputs, _kernel_cfg())
    # The corrupt file was quarantined aside, the run fell back to a
    # cold record-and-compile, and the artifact exists again.
    assert kernel_cache_stats() == (0, 2)
    quarantined = [p for p in kernel_store_dir().iterdir()
                   if ".corrupt-" in p.name]
    assert quarantined
    assert len(_artifacts()) == 1
    assert rerun.cycles == cold.cycles


def test_malformed_record_quarantined():
    program = build("laplace2d", shape=(16, 16))
    inputs = random_inputs(program)
    simulate(program, inputs, _kernel_cfg())
    (path,) = _artifacts()
    data = json.loads(path.read_text())
    del data["record"]["cycles"]
    path.write_text(json.dumps(data))
    _drop_in_process_artifacts()
    rerun = simulate(program, inputs, _kernel_cfg())
    assert rerun.profile.engine == "kernel"
    assert kernel_cache_stats() == (0, 2)
    assert any(".corrupt-" in p.name
               for p in kernel_store_dir().iterdir())


def test_auto_upgrades_after_kernel_run():
    program = build("laplace2d", shape=(16, 16))
    inputs = random_inputs(program)
    auto_cold = simulate(program, inputs,
                         SimulatorConfig(engine_mode="auto"))
    # No artifact yet: auto resolves to the batched engine.
    assert auto_cold.profile.engine == "batched"
    kernel = simulate(program, inputs, _kernel_cfg())
    assert kernel_available(program)
    auto_warm = simulate(program, inputs,
                         SimulatorConfig(engine_mode="auto"))
    assert auto_warm.profile.engine == "kernel"
    assert auto_warm.profile.kernel_cached
    assert auto_warm.cycles == kernel.cycles


@pytest.mark.parametrize("backend", ["python", "cffi"])
def test_forced_backend_bitwise(backend, monkeypatch):
    if backend == "cffi":
        pytest.importorskip("cffi")
    program = build("horizontal_diffusion", shape=(8, 8, 8))
    inputs = random_inputs(program)
    batched = simulate(program, inputs,
                       SimulatorConfig(engine_mode="batched"))
    monkeypatch.setenv(KERNEL_BACKEND_ENV, backend)
    simulate(program, inputs, _kernel_cfg())
    warm = simulate(program, inputs, _kernel_cfg())
    assert warm.profile.kernel_cached
    assert warm.cycles == batched.cycles
    for name in batched.outputs:
        assert np.array_equal(batched.outputs[name],
                              warm.outputs[name], equal_nan=True)


def test_invalid_backend_env_rejected(monkeypatch):
    program = build("laplace2d", shape=(16, 16))
    inputs = random_inputs(program)
    simulate(program, inputs, _kernel_cfg())
    monkeypatch.setenv(KERNEL_BACKEND_ENV, "cuda")
    with pytest.raises(ValidationError, match="REPRO_KERNEL_BACKEND"):
        simulate(program, inputs, _kernel_cfg())


def test_error_parity_on_hit_missing_input():
    program = build("laplace2d", shape=(16, 16))
    inputs = random_inputs(program)
    simulate(program, inputs, _kernel_cfg())
    broken = dict(inputs)
    (name, arr) = next(iter(broken.items()))
    with pytest.raises(ValidationError):
        simulate(program, {}, _kernel_cfg())
    with pytest.raises(ValidationError):
        broken[name] = arr.reshape(-1)[:-1]
        simulate(program, broken, _kernel_cfg())
    # The cache is unaffected by rejected runs.
    good = simulate(program, inputs, _kernel_cfg())
    assert good.profile.kernel_cached


def test_tracing_rejects_kernel_mode():
    from repro.simulator import simulate_traced
    program = build("laplace2d", shape=(8, 8))
    inputs = random_inputs(program)
    with pytest.raises(ValidationError, match="kernel"):
        simulate_traced(program, inputs,
                        config=_kernel_cfg())
