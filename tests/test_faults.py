"""Tests for the fault-injection and resilience subsystem
(``repro.faults``): plan parsing and validation, seeded plan
generation, deadlock forensics, crash-safe storage primitives, cache
quarantine/spill hardening, and the explorer's failure handling."""

import json
import pickle
import time

import pytest

from repro.errors import DeadlockError, ValidationError
from repro.explore import (
    ConfigSpace,
    ExplorationReport,
    PointFailure,
    ResultCache,
    explore,
)
from repro.explore.report import ExplorationEntry
from repro.faults import (
    FaultPlan,
    FileLock,
    LinkFault,
    UnitStall,
    parse_link_fault_spec,
    parse_unit_stall_spec,
    quarantine_file,
    random_fault_plan,
    read_json_guarded,
)
from repro.lowering.cache import ArtifactCache, content_key
from repro.programs import laplace2d
from repro.simulator.engine import SimulatorConfig, simulate
from util import chain_program, diamond_program, edge_keys, random_inputs


class TestFaultPlan:
    def test_link_fault_spec_round_trip(self):
        fault = parse_link_fault_spec("s0:s1@100:200")
        assert fault == LinkFault("s0", "s1", 100, 200)
        assert fault.is_outage
        assert "outage" in fault.describe()

        degraded = parse_link_fault_spec("s0:s1:a@64:96*0.5")
        assert degraded.data == "a"
        assert degraded.rate_scale == 0.5
        assert not degraded.is_outage
        assert "degraded" in degraded.describe()

    def test_unit_stall_spec(self):
        stall = parse_unit_stall_spec("s1@100:150")
        assert stall == UnitStall("s1", 100, 150)
        assert stall.covers(100) and stall.covers(149)
        assert not stall.covers(150)

    def test_bad_specs_are_rejected(self):
        with pytest.raises(ValidationError, match="link-fault spec"):
            parse_link_fault_spec("s0:s1")
        with pytest.raises(ValidationError, match="link-fault spec"):
            parse_link_fault_spec("s0@1:2")
        with pytest.raises(ValidationError, match="fault window"):
            parse_link_fault_spec("s0:s1@nope")
        with pytest.raises(ValidationError, match="rate scale"):
            parse_link_fault_spec("s0:s1@1:2*fast")
        with pytest.raises(ValidationError, match="unit-stall spec"):
            parse_unit_stall_spec("s0")
        with pytest.raises(ValidationError, match="empty unit"):
            parse_unit_stall_spec("@1:2")

    def test_window_validation(self):
        with pytest.raises(ValidationError, match="end must be > start"):
            UnitStall("s0", 9, 3)
        with pytest.raises(ValidationError, match="start must be >= 0"):
            UnitStall("s0", -1, 3)
        with pytest.raises(ValidationError, match="rate_scale"):
            LinkFault("a", "b", 0, 8, rate_scale=1.0)

    def test_plan_json_round_trip(self):
        plan = FaultPlan(
            link_faults=(LinkFault("s0", "s1", 10, 20, rate_scale=0.25,
                                   data="a"),),
            unit_stalls=(UnitStall("s1", 5, 9),))
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_json(
            json.loads(json.dumps(plan.to_json()))) == plan

    def test_empty_and_totals(self):
        assert FaultPlan().empty
        plan = FaultPlan(unit_stalls=(UnitStall("s0", 0, 10),
                                      UnitStall("s1", 5, 20)))
        assert not plan.empty
        assert plan.total_fault_cycles() == 25
        assert len(plan.describe_lines()) == 2

    def test_random_plan_is_seed_deterministic(self):
        program = chain_program(3)
        device_of = {"s0": 0, "s1": 0, "s2": 1}
        plans = [random_fault_plan(program, seed=7, horizon=500,
                                   device_of=device_of)
                 for _ in range(2)]
        assert plans[0] == plans[1]
        distinct = {random_fault_plan(program, seed=s, horizon=500,
                                      device_of=device_of)
                    for s in range(8)}
        assert len(distinct) > 1

    def test_random_plan_faults_only_remote_links(self):
        program = chain_program(3)
        # No placement: every edge is local, so no link can fail.
        for seed in range(6):
            plan = random_fault_plan(program, seed=seed, horizon=500)
            assert plan.link_faults == ()


class TestFaultResolution:
    def test_unknown_edge_is_rejected(self):
        program = chain_program(2)
        plan = FaultPlan(link_faults=(LinkFault("nope", "s1", 0, 8),))
        with pytest.raises(ValidationError, match="matches no edge"):
            simulate(program, random_inputs(program),
                     SimulatorConfig(fault_plan=plan))

    def test_unknown_unit_is_rejected(self):
        program = chain_program(2)
        plan = FaultPlan(unit_stalls=(UnitStall("nope", 0, 8),))
        with pytest.raises(ValidationError, match="names no unit"):
            simulate(program, random_inputs(program),
                     SimulatorConfig(fault_plan=plan))

    def test_report_counts_only_simulated_fault_cycles(self):
        program = chain_program(2)
        inputs = random_inputs(program)
        plan = FaultPlan(unit_stalls=(UnitStall("s0", 50, 60),))
        result = simulate(program, inputs,
                          SimulatorConfig(fault_plan=plan))
        assert result.fault_report is not None
        assert result.fault_report.unit_stall_cycles == {"s0": 10}
        assert result.fault_report.any_faults
        assert any("injected stall" in line for line in
                   result.fault_report.summary_lines())

    def test_empty_plan_is_inert(self):
        program = chain_program(2)
        inputs = random_inputs(program)
        plain = simulate(program, inputs, SimulatorConfig())
        empty = simulate(program, inputs,
                         SimulatorConfig(fault_plan=FaultPlan()))
        assert plain.fault_report is None
        assert empty.fault_report is None
        assert plain.cycles == empty.cycles


class TestDeadlockForensics:
    def _wedge(self):
        program = diamond_program(long_branch=2)
        config = SimulatorConfig(
            engine_mode="scalar",
            channel_capacities={k: 2 for k in edge_keys(program)},
            deadlock_window=64)
        with pytest.raises(DeadlockError) as info:
            simulate(program, random_inputs(program), config)
        return info.value

    def test_report_rides_on_the_error(self):
        exc = self._wedge()
        report = exc.report
        assert report is not None
        assert report.cycle == exc.cycle
        assert {name for name, _ in report.blocked} >= {"join"}
        assert report.wait_cycle is not None
        assert report.wait_cycle[0] == min(report.wait_cycle)
        assert report.fault_window is None

    def test_explain_is_one_paragraph(self):
        report = self._wedge().report
        text = report.explain()
        assert text.startswith(f"deadlock at cycle {report.cycle}")
        assert "Wait-for cycle:" in text
        assert "Frontier:" in text
        assert "\n" not in text

    def test_to_json_is_serializable(self):
        report = self._wedge().report
        spec = json.loads(json.dumps(report.to_json()))
        assert spec["cycle"] == report.cycle
        assert spec["wait_cycle"] == list(report.wait_cycle)
        assert spec["fault_window"] is None
        assert len(spec["channel_occupancy"]) == \
            len(report.channel_occupancy)


class TestStorePrimitives:
    def test_quarantine_never_clobbers(self, tmp_path, capsys):
        path = tmp_path / "cache.json"
        quarantined = []
        for _ in range(2):
            path.write_text("garbage")
            moved = quarantine_file(path, reason="test")
            assert moved is not None and moved.exists()
            quarantined.append(moved)
        assert quarantined[0] != quarantined[1]
        assert not path.exists()
        assert "quarantined corrupt file" in capsys.readouterr().err

    def test_quarantine_of_missing_file(self, tmp_path):
        assert quarantine_file(tmp_path / "gone.json") is None

    def test_read_json_guarded(self, tmp_path):
        path = tmp_path / "data.json"
        assert read_json_guarded(path) is None  # missing: no quarantine
        assert list(tmp_path.iterdir()) == []

        path.write_text('{"a": 1}')
        assert read_json_guarded(path) == {"a": 1}

        path.write_text('{"a": 1')  # truncated
        assert read_json_guarded(path, quiet=True) is None
        assert not path.exists()
        assert any(".corrupt-" in p.name for p in tmp_path.iterdir())

        path.write_text("[1, 2]")  # schema mismatch: expect dict
        assert read_json_guarded(path, quiet=True) is None
        assert not path.exists()

    def test_file_lock_round_trip(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock as held:
            assert held.locked
        assert not lock.locked

    def test_file_lock_contention_degrades(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path)
        assert holder.acquire()
        waiter = FileLock(path, timeout=0.1, poll=0.01)
        with waiter as entered:  # enters anyway, unlocked
            assert not entered.locked
        holder.release()
        assert FileLock(path, timeout=0.5).acquire()


class TestFileLockFallback:
    """The ``O_CREAT|O_EXCL`` pid-lockfile path used when ``fcntl``
    is unavailable (non-POSIX platforms): it must actually lock —
    before this path existed, no-``fcntl`` platforms silently ran
    every merge unlocked."""

    @pytest.fixture(autouse=True)
    def _no_fcntl(self, monkeypatch):
        from repro.faults import store
        monkeypatch.setattr(store, "fcntl", None)

    def test_fallback_lock_round_trip(self, tmp_path):
        import os
        path = tmp_path / "x.lock"
        lock = FileLock(path)
        with lock as held:
            assert held.locked
            # The lockfile itself is the lock and records the owner.
            assert path.read_text().strip() == str(os.getpid())
        assert not lock.locked
        assert not path.exists()  # released by unlinking

    def test_fallback_lock_excludes_contenders(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path)
        assert holder.acquire()
        waiter = FileLock(path, timeout=0.1, poll=0.01)
        assert not waiter.acquire()  # live same-pid owner: held
        assert path.exists()
        holder.release()
        assert FileLock(path, timeout=0.5).acquire()

    def test_fallback_breaks_stale_dead_pid_lock(self, tmp_path):
        import os
        path = tmp_path / "x.lock"
        # Find a pid that cannot be alive: fork a child and reap it.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        path.write_text(str(pid))
        lock = FileLock(path, timeout=1.0, poll=0.01)
        assert lock.acquire()  # dead owner: stale lock broken
        assert path.read_text().strip() == str(os.getpid())
        lock.release()

    def test_fallback_breaks_pidless_lock(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("")  # holder crashed between create and write
        assert FileLock(path, timeout=1.0, poll=0.01).acquire()

    def test_fallback_unwritable_dir_degrades(self, tmp_path):
        missing = tmp_path / "file"
        missing.write_text("x")
        # Lock path nested under a *file*: mkdir fails, acquire is
        # best-effort False rather than an exception.
        lock = FileLock(missing / "nested" / "x.lock", timeout=0.1)
        with lock as entered:
            assert not entered.locked


class TestResultCacheHardening:
    def test_corrupt_persistent_cache_is_quarantined(self, tmp_path,
                                                     capsys):
        path = tmp_path / "explore_cache.json"
        path.write_text('{"trunc')
        cache = ResultCache()
        assert cache.load_persistent(path) == 0
        assert not path.exists()
        assert any(".corrupt-" in p.name for p in tmp_path.iterdir())
        assert "quarantined" in capsys.readouterr().err
        # The end-of-sweep save rebuilds a clean file.
        assert cache.save_persistent(path)
        assert cache.load_persistent(path) == 0  # empty but valid

    def test_schema_drift_is_quarantined(self, tmp_path):
        path = tmp_path / "explore_cache.json"
        path.write_text(json.dumps({"key": {"not": "a measurement"}}))
        assert ResultCache().load_persistent(path, quiet=True) == 0
        assert not path.exists()

    def test_missing_cache_is_just_empty(self, tmp_path):
        assert ResultCache().load_persistent(
            tmp_path / "absent.json") == 0
        assert list(tmp_path.iterdir()) == []


class TestArtifactSpill:
    def test_spill_survives_across_cache_instances(self, tmp_path):
        key = content_key("analysis", "probe")
        first = ArtifactCache(spill_dir=tmp_path)
        assert first.get_or_build(key, lambda: {"depth": 42}) == \
            {"depth": 42}
        assert any(p.suffix == ".pkl" for p in tmp_path.iterdir())

        def boom():
            raise AssertionError("spilled artifact must not rebuild")

        second = ArtifactCache(spill_dir=tmp_path)
        assert second.get_or_build(key, boom) == {"depth": 42}
        assert second.stats("analysis") == (1, 0)

    def test_corrupt_spill_is_quarantined_and_rebuilt(self, tmp_path,
                                                      capsys):
        key = content_key("analysis", "probe")
        spill = tmp_path / (key.replace(":", "-") + ".pkl")
        spill.write_bytes(b"not a pickle")
        cache = ArtifactCache(spill_dir=tmp_path)
        assert cache.get_or_build(key, lambda: "rebuilt") == "rebuilt"
        assert any(".corrupt-" in p.name for p in tmp_path.iterdir())
        assert "quarantined" in capsys.readouterr().err
        # The rebuild re-spilled a clean file over the old path.
        assert pickle.loads(spill.read_bytes()) == "rebuilt"

    def test_only_persistable_kinds_spill(self, tmp_path):
        cache = ArtifactCache(spill_dir=tmp_path)
        cache.get_or_build(content_key("sdfg", "probe"), lambda: "x")
        assert not any(p.suffix == ".pkl" for p in tmp_path.iterdir())

    def test_env_var_enables_spill(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        assert ArtifactCache().spill_dir == tmp_path
        monkeypatch.delenv("REPRO_ARTIFACT_DIR")
        assert ArtifactCache().spill_dir is None


def _small_sweep_kwargs(tmp_path):
    return dict(space=ConfigSpace(vectorizations=(1, 2)),
                strategy="exhaustive", workers=1,
                cache_path=tmp_path / "cache.json",
                retry_backoff=0.0, checkpoint_every=1)


class TestExplorerResilience:
    def test_transient_crash_is_retried(self, tmp_path, monkeypatch):
        from repro.explore import explorer as explorer_mod
        real = explorer_mod.simulate
        crashes = {"left": 1}

        def flaky(program, inputs, config, device_of=None):
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise RuntimeError("transient worker crash")
            return real(program, inputs, config, device_of=device_of)

        monkeypatch.setattr(explorer_mod, "simulate", flaky)
        report = explore(laplace2d(shape=(12, 12)), retries=2,
                         **_small_sweep_kwargs(tmp_path))
        assert crashes["left"] == 0
        assert report.failed_points == ()
        assert all(e.simulated for e in report.entries if e.feasible)

    def test_permanent_crash_yields_partial_report(self, tmp_path,
                                                   monkeypatch):
        from repro.explore import explorer as explorer_mod
        real = explorer_mod.simulate

        def cursed(program, inputs, config, device_of=None):
            if program.vectorization == 2:
                raise RuntimeError("cursed machine")
            return real(program, inputs, config, device_of=device_of)

        monkeypatch.setattr(explorer_mod, "simulate", cursed)
        report = explore(laplace2d(shape=(12, 12)), retries=1,
                         **_small_sweep_kwargs(tmp_path))
        failed = report.failed_points
        assert len(failed) == 1
        failure = failed[0].failure
        assert failure.kind == "error"
        assert "cursed machine" in failure.message
        assert failure.attempts == 2  # first try + one retry
        # The healthy point still measured, and the report says so.
        assert any(e.simulated for e in report.entries)
        text = "\n".join(report.summary_lines())
        assert "failed points: 1" in text
        assert report.to_json()["summary"]["failed_points"] == 1

    def test_deterministic_failures_are_not_retried(self, tmp_path,
                                                    monkeypatch):
        from repro.errors import StencilFlowError
        from repro.explore import explorer as explorer_mod

        def doomed(program, inputs, config, device_of=None):
            raise StencilFlowError("model violation")

        monkeypatch.setattr(explorer_mod, "simulate", doomed)
        report = explore(laplace2d(shape=(12, 12)), retries=3,
                         **_small_sweep_kwargs(tmp_path))
        assert report.failed_points
        assert all(e.failure.attempts == 1
                   for e in report.failed_points)

    def test_point_timeout_records_failed_points(self, tmp_path,
                                                 monkeypatch):
        from repro.explore import explorer as explorer_mod

        def glacial(program, inputs, config, device_of=None):
            time.sleep(0.4)
            raise AssertionError("should have timed out first")

        monkeypatch.setattr(explorer_mod, "simulate", glacial)
        kwargs = _small_sweep_kwargs(tmp_path)
        kwargs.update(workers=2, persist=False)
        report = explore(laplace2d(shape=(12, 12)),
                         point_timeout=0.05, retries=0, **kwargs)
        assert report.failed_points
        assert all(e.failure.kind == "timeout"
                   for e in report.failed_points)
        assert "per-point budget" in \
            report.failed_points[0].failure.message

    def test_failed_sweep_resumes_to_completion(self, tmp_path,
                                                monkeypatch):
        from repro.explore import explorer as explorer_mod
        real = explorer_mod.simulate

        def cursed(program, inputs, config, device_of=None):
            if program.vectorization == 2:
                raise RuntimeError("cursed machine")
            return real(program, inputs, config, device_of=device_of)

        program = laplace2d(shape=(12, 12))
        kwargs = _small_sweep_kwargs(tmp_path)
        monkeypatch.setattr(explorer_mod, "simulate", cursed)
        first = explore(program, retries=0, **kwargs)
        assert len(first.failed_points) == 1
        assert (tmp_path / "cache.json").exists()  # checkpointed

        # Next run: the healthy point hits the cache, the failed one
        # is retried (now healthy) — the sweep completes fully.
        monkeypatch.setattr(explorer_mod, "simulate", real)
        second = explore(program, retries=0, **kwargs)
        assert second.failed_points == ()
        assert second.cache_hits >= 1
        assert all(e.simulated for e in second.entries if e.feasible)


class TestFailureRecords:
    def test_point_failure_round_trip(self):
        failure = PointFailure(kind="deadlock", message="wedged",
                               attempts=3, detail={"cycle": 72})
        assert PointFailure.from_json(failure.to_json()) == failure

    def test_entry_round_trip_with_failure(self):
        from repro.explore import ConfigPoint
        entry = ExplorationEntry(
            point=ConfigPoint(vectorization=2), feasible=True,
            failed=True,
            failure=PointFailure(kind="timeout", message="slow"))
        again = ExplorationEntry.from_json(
            json.loads(json.dumps(entry.to_json())))
        assert again == entry

    def test_old_reports_without_failure_fields_load(self):
        from repro.explore import ConfigPoint
        entry = ExplorationEntry(point=ConfigPoint(), feasible=True)
        spec = entry.to_json()
        del spec["failed"], spec["failure"]  # pre-resilience schema
        loaded = ExplorationEntry.from_json(spec)
        assert not loaded.failed
        assert loaded.failure is None


class TestReportRoundTripWithFailures:
    def test_full_report_round_trip(self, tmp_path, monkeypatch):
        from repro.explore import explorer as explorer_mod

        def doomed(program, inputs, config, device_of=None):
            raise RuntimeError("boom")

        monkeypatch.setattr(explorer_mod, "simulate", doomed)
        report = explore(laplace2d(shape=(12, 12)), retries=0,
                         **_small_sweep_kwargs(tmp_path))
        again = ExplorationReport.from_json(
            json.loads(json.dumps(report.to_json())))
        assert len(again.failed_points) == len(report.failed_points)
        assert again.failed_points[0].failure == \
            report.failed_points[0].failure
