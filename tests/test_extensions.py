"""Tests for the extension features: spatial tiling, CSE analysis,
simulation tracing."""

import numpy as np
import pytest

from repro.analysis import (
    accumulated_halo,
    analyze_buffers,
    choose_tiling,
    plan_tiling,
)
from repro.errors import AnalysisError, DeadlockError
from repro.expr import (
    census,
    census_after_cse,
    cse_savings,
    parse,
    shared_subexpressions,
)
from repro.programs import chain, horizontal_diffusion
from repro.simulator import SimulatorConfig, simulate_traced
from util import chain_program, diamond_program, edge_keys, random_inputs


class TestTiling:
    def test_halo_grows_with_depth(self):
        shallow = accumulated_halo(chain(1, shape=(32, 32, 32)))
        deep = accumulated_halo(chain(4, shape=(32, 32, 32)))
        assert deep["i"] > shallow["i"]
        # Jacobi reads ±1 per dim per level.
        assert deep["i"] == 4
        assert shallow["i"] == 1

    def test_hdiff_halo(self):
        # lap (±1) -> flux (+1) -> divergence (-1): depth-3 reach.
        halo = accumulated_halo(horizontal_diffusion(shape=(32, 32, 8)))
        assert halo == {"i": 3, "j": 3}

    def test_redundancy_grows_as_tiles_shrink(self):
        program = chain(3, shape=(64, 64, 16))
        big = plan_tiling(program, (64, 64))
        small = plan_tiling(program, (16, 16))
        assert big.redundancy < small.redundancy
        assert big.num_tiles == 1
        assert small.num_tiles == 16

    def test_full_domain_tile_still_padded(self):
        # Even the full domain counts halo at its edges in this model
        # (boundary tiles compute their halo region redundantly).
        program = chain(2, shape=(32, 32, 16))
        plan = plan_tiling(program, (32, 32))
        assert plan.redundancy > 1.0

    def test_buffer_bytes_shrink_with_tiles(self):
        program = chain(3, shape=(64, 64, 16))
        big = plan_tiling(program, (64, 64))
        small = plan_tiling(program, (16, 16))
        assert small.buffer_bytes() < big.buffer_bytes()

    def test_choose_tiling_respects_budget(self):
        program = chain(3, shape=(64, 64, 16))
        budget = plan_tiling(program, (64, 64)).buffer_bytes() // 2
        plan = choose_tiling(program, budget)
        assert plan.buffer_bytes() <= budget
        assert plan.tile < (64, 64)

    def test_choose_tiling_impossible_budget(self):
        program = chain(3, shape=(64, 64, 16))
        with pytest.raises(AnalysisError, match="no tiling"):
            choose_tiling(program, 16)

    def test_wrong_tile_rank(self):
        program = chain(2, shape=(32, 32, 16))
        with pytest.raises(AnalysisError, match="non-innermost"):
            plan_tiling(program, (32,))

    def test_total_computed_cells(self):
        program = chain(2, shape=(32, 32, 16))
        plan = plan_tiling(program, (16, 16))
        assert plan.total_computed_cells == \
            plan.padded_cells * plan.num_tiles


class TestCSE:
    def test_shared_subexpressions_found(self):
        node = parse("(a[i]+b[i]) * (a[i]+b[i])")
        shared = shared_subexpressions(node)
        assert len(shared) == 1
        assert list(shared.values()) == [2]

    def test_census_after_cse_counts_once(self):
        node = parse("(a[i]+b[i]) * (a[i]+b[i])")
        assert census(node).adds == 2
        assert census_after_cse(node).adds == 1
        assert cse_savings(node) == 1

    def test_no_sharing_no_savings(self):
        node = parse("a[i]*b[i] + a[i-1]*b[i-1]")
        assert cse_savings(node) == 0

    def test_fusion_duplicates_recovered_by_cse(self):
        # Fusing a producer read 3 times (the hdiff clamp pattern)
        # triples its syntactic ops; CSE prices them once.
        from repro.core import StencilProgram
        from repro.transforms import fuse
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i"]}},
            "outputs": ["t"],
            "shape": [16],
            "program": {
                "s": {"code": "a[i] * 2.0 + 1.0",
                      "boundary_condition": "shrink"},
                "t": {"code": "s[i] > 4.0 ? 4.0 : (s[i] < 0.0 ? "
                              "0.0 : s[i])",
                      "boundary_condition": "shrink"},
            },
        })
        fused = fuse(program, "s", "t")
        ast = fused.stencil("t").ast
        assert census(ast).multiplies == 3          # syntactic
        assert census_after_cse(ast).multiplies == 1  # hardware

    def test_ternary_branch_counted(self):
        node = parse("a[i] > 0 ? a[i] : 1")
        counts = census_after_cse(node)
        assert counts.branches == 1
        assert counts.data_dependent_branches == 1


# Tracing forces the scalar engine; the default engine_mode "auto"
# warns about the downgrade (tests/test_obs.py covers the warning).
@pytest.mark.filterwarnings("ignore:tracing forces the scalar engine")
class TestTracing:
    def test_trace_records_occupancy(self):
        # The diamond's fast edge holds words while the slow branch
        # fills, so its occupancy trace is non-trivial (a pure chain
        # drains every push in the same cycle).
        program = diamond_program(long_branch=2)
        result, trace = simulate_traced(program, random_inputs(program),
                                        sample_every=8)
        assert result.cycles > 0
        assert trace.cycles
        assert trace.occupancy
        peaks = [trace.peak_occupancy(c) for c in trace.occupancy]
        assert any(p > 0 for p in peaks)

    def test_trace_matches_untraced_functionally(self):
        from repro.simulator import simulate
        program = chain_program(2)
        inputs = random_inputs(program)
        plain = simulate(program, inputs)
        traced, _trace = simulate_traced(program, inputs)
        out = program.outputs[0]
        np.testing.assert_allclose(plain.outputs[out],
                                   traced.outputs[out], rtol=1e-6)
        assert traced.cycles == plain.cycles

    def test_stalled_fraction(self):
        program = diamond_program()
        _result, trace = simulate_traced(program, random_inputs(program),
                                         sample_every=4)
        for unit in trace.progress:
            fraction = trace.stalled_fraction(unit)
            assert 0.0 <= fraction <= 1.0

    def test_traced_deadlock(self):
        program = diamond_program(long_branch=2)
        config = SimulatorConfig(
            channel_capacities={k: 2 for k in edge_keys(program)},
            deadlock_window=64)
        with pytest.raises(DeadlockError, match="traced"):
            simulate_traced(program, random_inputs(program), config)

    def test_summary_text(self):
        program = chain_program(2)
        _result, trace = simulate_traced(program, random_inputs(program))
        text = trace.summary()
        assert "peak" in text and "stalled" in text
