"""Unit tests for the SDFG layer."""

import pytest

from repro.core import dtype
from repro.errors import DefinitionError, GraphError
from repro.sdfg import (
    SDFG,
    AccessNode,
    MapEntry,
    MapExit,
    Memlet,
    PipelineEntry,
    StencilLibraryNode,
    Tasklet,
    build_sdfg,
    stream_name,
)
from repro.programs import laplace2d
from util import lst1_program


class TestDescriptors:
    def test_array(self):
        sdfg = SDFG("t")
        array = sdfg.add_array("a", (4, 4), dtype("float32"))
        assert array.total_size == 16
        assert array.bytes == 64

    def test_stream(self):
        sdfg = SDFG("t")
        stream = sdfg.add_stream("s", dtype("float32"), buffer_size=10,
                                 vector_width=4)
        assert stream.bytes == 160

    def test_duplicate_rejected(self):
        sdfg = SDFG("t")
        sdfg.add_array("a", (4,), dtype("float32"))
        with pytest.raises(GraphError, match="duplicate"):
            sdfg.add_scalar("a", dtype("float32"))

    def test_local_storage(self):
        sdfg = SDFG("t")
        sdfg.add_array("buf", (128,), dtype("float32"), storage="local")
        sdfg.add_stream("s", dtype("float32"), buffer_size=8)
        assert sdfg.fast_memory_bytes() == 128 * 4 + 8 * 4

    def test_invalid_storage(self):
        sdfg = SDFG("t")
        with pytest.raises(DefinitionError):
            sdfg.add_array("a", (4,), dtype("float32"), storage="weird")


class TestStateGraph:
    def test_edges_and_topology(self):
        sdfg = SDFG("t")
        sdfg.add_array("a", (4,), dtype("float32"))
        state = sdfg.add_state("main")
        read = state.add_access("a")
        tasklet = state.add_node(Tasklet("work", ("x",), ("y",), "y = x"))
        state.add_edge(read, tasklet, Memlet("a"), "", "x")
        order = state.topological_nodes()
        assert order.index(read) < order.index(tasklet)

    def test_unknown_container_rejected(self):
        sdfg = SDFG("t")
        state = sdfg.add_state("main")
        with pytest.raises(GraphError, match="unknown data"):
            state.add_access("nope")

    def test_map_scope(self):
        entry = MapEntry("m", ("i", "j"), ((0, 4), (0, 8)))
        exit_node = MapExit(entry)
        assert entry.iterations == 32
        assert entry.exit is exit_node

    def test_pipeline_scope(self):
        pipe = PipelineEntry("p", ("t",), ((0, 100),), init_size=10,
                             drain_size=5)
        assert pipe.total_iterations == 115

    def test_validate_catches_cycle(self):
        sdfg = SDFG("t")
        sdfg.add_array("a", (4,), dtype("float32"))
        state = sdfg.add_state("main")
        n1 = state.add_access("a")
        n2 = state.add_access("a")
        state.add_edge(n1, n2, Memlet("a"))
        state.add_edge(n2, n1, Memlet("a"))
        with pytest.raises(GraphError, match="cycle"):
            sdfg.validate()


class TestBuild:
    def test_containers(self):
        program = lst1_program()
        sdfg = build_sdfg(program)
        assert "a0" in sdfg.data
        assert "b4_out" in sdfg.data
        key = stream_name("stencil:b0", "stencil:b1", "b0")
        assert key in sdfg.streams()

    def test_stream_buffer_sizes_from_analysis(self):
        from repro.analysis import analyze_buffers
        program = lst1_program(shape=(16, 16, 16))
        analysis = analyze_buffers(program)
        sdfg = build_sdfg(program, analysis)
        key = stream_name("stencil:b2", "stencil:b4", "b2")
        expected = analysis.buffer_for_edge("stencil:b2", "stencil:b4",
                                            "b2").size
        assert sdfg.streams()[key].buffer_size == expected

    def test_one_library_node_per_stencil(self):
        sdfg = build_sdfg(lst1_program())
        libraries = sdfg.states[0].library_nodes()
        assert len(libraries) == 5
        assert all(isinstance(n, StencilLibraryNode) for n in libraries)

    def test_expansion_produces_fig12_phases(self):
        sdfg = build_sdfg(laplace2d(shape=(16, 16)))
        sdfg.expand_library_nodes()
        sdfg.validate()
        labels = [t.label for t in sdfg.states[0].tasklets()]
        assert any(label.startswith("shift_") for label in labels)
        assert any("compute" in label for label in labels)
        assert any("conditional_write" in label for label in labels)
        assert not sdfg.states[0].library_nodes()

    def test_expansion_creates_local_buffers(self):
        sdfg = build_sdfg(laplace2d(shape=(16, 16)))
        sdfg.expand_library_nodes()
        local = [a for a in sdfg.arrays().values()
                 if a.storage == "local"]
        assert local, "expansion must allocate shift registers"

    def test_to_dot(self):
        sdfg = build_sdfg(lst1_program())
        dot = sdfg.to_dot()
        assert dot.startswith("digraph")
        assert "stencil_b3" in dot

    def test_library_expand_unknown_impl(self):
        program = lst1_program()
        sdfg = build_sdfg(program)
        node = sdfg.states[0].library_nodes()[0]
        with pytest.raises(DefinitionError, match="no implementation"):
            node.expand(sdfg, sdfg.states[0], implementation="rtl")
