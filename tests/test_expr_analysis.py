"""Unit tests for expression analyses: accesses, census, latency, folding."""

import pytest

from repro.expr import (
    LatencyModel,
    Literal,
    accessed_fields,
    census,
    count_nodes,
    critical_path,
    depth,
    field_access_dims,
    field_accesses,
    fold,
    index_vars,
    parse,
)


class TestAccessExtraction:
    def test_distinct_offsets_sorted(self):
        node = parse("a[i+1,j,k] + a[i-1,j,k] + a[i-1,j,k]")
        assert field_accesses(node) == {"a": [(-1, 0, 0), (1, 0, 0)]}

    def test_multiple_fields(self):
        node = parse("a[i,j,k] * b[i,k] + c")
        accesses = field_accesses(node)
        assert set(accesses) == {"a", "b", "c"}
        assert accesses["c"] == [()]

    def test_accessed_fields(self):
        node = parse("x[i] + y[i] * x[i-1]")
        assert accessed_fields(node) == {"x", "y"}

    def test_access_dims(self):
        node = parse("a[i,j,k] + b[i,k]")
        dims = field_access_dims(node)
        assert dims == {"a": ("i", "j", "k"), "b": ("i", "k")}

    def test_inconsistent_dims_rejected(self):
        node = parse("a[i,j,k] + a[i,k]")
        with pytest.raises(ValueError, match="inconsistent"):
            field_access_dims(node)

    def test_index_vars(self):
        node = parse("a[i,j,k] * k + j")
        assert index_vars(node) == {"j", "k"}


class TestCensus:
    def test_adds_and_subs(self):
        c = census(parse("a[i] + b[i] - c[i]"))
        assert c.adds == 2
        assert c.multiplies == 0

    def test_multiplies_divides(self):
        c = census(parse("a[i] * b[i] / c[i]"))
        assert c.multiplies == 1
        assert c.divides == 1

    def test_sqrt_minmax(self):
        c = census(parse("sqrt(a[i]) + min(b[i], 0) + max(b[i], 1)"))
        assert c.sqrts == 1
        assert c.mins == 1
        assert c.maxs == 1
        assert c.adds == 2

    def test_negation_counts_as_add(self):
        assert census(parse("-a[i]")).adds == 1

    def test_data_dependent_branch(self):
        c = census(parse("a[i] > 0 ? a[i] : 1"))
        assert c.branches == 1
        assert c.data_dependent_branches == 1
        assert c.comparisons == 1

    def test_constant_branch_not_data_dependent(self):
        c = census(parse("1 > 0 ? a[i] : 2"))
        assert c.branches == 1
        assert c.data_dependent_branches == 0

    def test_flops_property(self):
        c = census(parse("a[i]*b[i] + sqrt(c[i])"))
        assert c.flops == 3  # mul, add, sqrt

    def test_census_addition(self):
        a = census(parse("a[i] + b[i]"))
        b = census(parse("a[i] * b[i]"))
        combined = a + b
        assert combined.adds == 1
        assert combined.multiplies == 1

    def test_census_scaled(self):
        c = census(parse("a[i] + b[i]")).scaled(10)
        assert c.adds == 10


class TestLatency:
    MODEL = LatencyModel({"+": 4, "*": 4, "/": 16, "select": 2,
                          "sqrt": 16, ">": 2}, default=0)

    def test_leaf_zero(self):
        assert critical_path(parse("a[i]"), self.MODEL) == 0
        assert critical_path(parse("2.5"), self.MODEL) == 0

    def test_chain(self):
        assert critical_path(parse("a[i] + b[i] + c[i]"), self.MODEL) == 8

    def test_balanced_tree_shorter_than_chain(self):
        chain = critical_path(parse("a[i] + b[i] + c[i] + d[i]"),
                              self.MODEL)
        tree = critical_path(parse("(a[i] + b[i]) + (c[i] + d[i])"),
                             self.MODEL)
        assert tree < chain

    def test_ternary_max_of_branches(self):
        node = parse("a[i] > 0 ? a[i]/b[i] : a[i]+b[i]")
        # max(cmp 2, div 16, add 4) + select 2
        assert critical_path(node, self.MODEL) == 18

    def test_call(self):
        assert critical_path(parse("sqrt(a[i]+b[i])"), self.MODEL) == 20

    def test_overrides(self):
        model = self.MODEL.with_overrides(**{"+": 1})
        assert critical_path(parse("a[i] + b[i]"), model) == 1

    def test_default_model_small(self):
        # The paper notes per-stencil compute latencies are typically
        # below 100 cycles even with conservative defaults.
        node = parse("0.25*(a[i-1,j,k]+2.0*a[i,j,k]+a[i+1,j,k])")
        assert 0 < critical_path(node) < 100


class TestFolding:
    def test_constant_arithmetic(self):
        assert fold(parse("2 * 3 + 1")) == Literal(7)

    def test_identity_add_zero(self):
        assert str(fold(parse("a[i] + 0"))) == "a[i]"

    def test_identity_mul_one(self):
        assert str(fold(parse("1 * a[i]"))) == "a[i]"

    def test_mul_zero(self):
        assert fold(parse("a[i] * 0")) == Literal(0)

    def test_div_one(self):
        assert str(fold(parse("a[i] / 1"))) == "a[i]"

    def test_double_negation(self):
        assert str(fold(parse("--a[i]"))) == "a[i]"

    def test_constant_ternary(self):
        assert str(fold(parse("1 > 0 ? a[i] : b[i]"))) == "a[i]"
        assert str(fold(parse("0 > 1 ? a[i] : b[i]"))) == "b[i]"

    def test_constant_call(self):
        assert fold(parse("sqrt(4)")) == Literal(2.0)

    def test_preserves_nonconstant(self):
        node = parse("a[i] + b[i]")
        assert fold(node) == node

    def test_division_by_zero_not_folded(self):
        node = fold(parse("a[i] + 1/0"))
        # 1/0 stays unfolded rather than crashing.
        assert "1" in str(node)

    def test_nested_fold(self):
        assert str(fold(parse("(a[i] * (2-1)) + (3-3)"))) == "a[i]"

    def test_idempotent(self):
        node = fold(parse("0.5 * (a[i] + 0) * 1"))
        assert fold(node) == node


class TestShape:
    def test_depth(self):
        assert depth(parse("a[i]")) == 1
        assert depth(parse("a[i] + b[i]")) == 2
        assert depth(parse("(a[i] + b[i]) * c[i]")) == 3

    def test_count_nodes(self):
        assert count_nodes(parse("a[i] + b[i]")) == 3
