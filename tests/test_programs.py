"""Unit tests for the program catalog and the hdiff construction."""

import numpy as np
import pytest

from repro.errors import DefinitionError
from repro.expr import census, parse
from repro.perf import (
    arithmetic_intensity_ops_per_operand,
    operand_traffic,
    operands_per_cycle,
    program_census,
)
from repro.programs import (
    PAPER_CENSUS,
    available_programs,
    build,
    chain,
    dense_stencil_code,
    horizontal_diffusion,
    jacobi3d_code,
    laplace2d,
)
from repro.run import run_reference


class TestIterative:
    def test_jacobi3d_is_8_ops(self):
        counts = census(parse(jacobi3d_code("a")))
        assert counts.flops == 8

    def test_dense_stencil_op_counts(self):
        for ops in (8, 12, 24, 30):
            counts = census(parse(dense_stencil_code("a", ops)))
            assert counts.flops == ops, ops

    def test_dense_stencil_rejects_odd(self):
        with pytest.raises(DefinitionError):
            dense_stencil_code("a", 9)

    def test_chain_structure(self):
        program = chain(5, shape=(16, 8, 8))
        assert len(program.stencils) == 5
        assert program.outputs == ("s4",)
        assert program.stencil("s2").accessed_fields == ("s1",)

    def test_chain_rank_checks(self):
        with pytest.raises(DefinitionError, match="3D domain"):
            chain(2, shape=(16, 16), kernel="jacobi3d")

    def test_chain_executes(self):
        program = chain(3, shape=(6, 6, 6), kernel="jacobi2d"
                        if False else "jacobi3d")
        rng = np.random.default_rng(0)
        result = run_reference(
            program, {"inp": rng.random((6, 6, 6),
                                        dtype=np.float32)})
        assert result["s2"].data.shape == (6, 6, 6)
        assert np.isfinite(result["s2"].data).all()

    def test_chain_smooths(self):
        # Jacobi iterations reduce variance.
        program = chain(4, shape=(8, 16, 16))
        rng = np.random.default_rng(0)
        inp = rng.random((8, 16, 16), dtype=np.float32)
        result = run_reference(program, {"inp": inp})
        assert result["s3"].data.std() < inp.std()

    def test_catalog(self):
        assert "horizontal_diffusion" in available_programs()
        program = build("laplace2d", shape=(16, 16))
        assert program.stencil_names == ("b",)
        with pytest.raises(DefinitionError, match="unknown program"):
            build("nope")

    def test_laplace_matches_numpy(self):
        program = laplace2d(shape=(8, 8))
        rng = np.random.default_rng(1)
        a = rng.random((8, 8), dtype=np.float32)
        result = run_reference(program, {"a": a})["b"]
        expected = (-4 * a[1:-1, 1:-1] + a[:-2, 1:-1] + a[2:, 1:-1]
                    + a[1:-1, :-2] + a[1:-1, 2:])
        np.testing.assert_allclose(result.valid_view, expected,
                                   rtol=1e-5)


class TestHorizontalDiffusion:
    def test_census_matches_paper_exactly(self):
        counts = program_census(horizontal_diffusion(shape=(16, 16, 8)))
        for key, value in PAPER_CENSUS.items():
            assert getattr(counts, key) == value, key

    def test_operand_traffic(self):
        program = horizontal_diffusion()
        i, j, k = program.shape
        traffic = operand_traffic(program)
        assert traffic.read_operands == 5 * i * j * k + 5 * i
        assert traffic.write_operands == 4 * i * j * k

    def test_arithmetic_intensity(self):
        ai = arithmetic_intensity_ops_per_operand(horizontal_diffusion())
        assert ai == pytest.approx(130 / 9, rel=1e-3)

    def test_operands_per_cycle_near_nine(self):
        assert operands_per_cycle(horizontal_diffusion()) == \
            pytest.approx(9.0, abs=0.01)

    def test_ten_unique_input_fields(self):
        program = horizontal_diffusion()
        assert len(program.inputs) == 10
        three_d = [f for f in program.inputs.values() if len(f.dims) == 3]
        one_d = [f for f in program.inputs.values() if len(f.dims) == 1]
        assert len(three_d) == 5
        assert len(one_d) == 5

    def test_four_outputs(self):
        program = horizontal_diffusion()
        assert sorted(program.outputs) == ["pp_out", "u_out", "v_out",
                                           "w_out"]

    def test_fan_in_range(self):
        # Each non-source stencil receives data from 2-6 other nodes
        # (stencils and memories combined) per Sec. IX-A.
        from repro.graph import StencilGraph
        graph = StencilGraph(horizontal_diffusion(shape=(16, 16, 8)))
        for stencil_id in graph.stencil_ids():
            fan_in = len(graph.in_edges(stencil_id))
            assert 1 <= fan_in <= 6, stencil_id

    def test_executes_functionally(self):
        program = horizontal_diffusion(shape=(12, 12, 4))
        rng = np.random.default_rng(2)
        inputs = {}
        for name, spec in program.inputs.items():
            shape = spec.shape(program.shape, program.index_names)
            inputs[name] = (rng.random(shape, dtype=np.float32) * 0.1
                            + 1.0)
        results = run_reference(program, inputs)
        for out in program.outputs:
            view = results[out].valid_view
            assert view.size > 0
            assert np.isfinite(view).all()

    def test_smag_clamped(self):
        program = horizontal_diffusion(shape=(12, 12, 4))
        rng = np.random.default_rng(2)
        inputs = {}
        for name, spec in program.inputs.items():
            shape = spec.shape(program.shape, program.index_names)
            inputs[name] = (rng.random(shape, dtype=np.float32) * 0.1
                            + 1.0)
        results = run_reference(program, inputs)
        smag = results["smag_u"].valid_view
        assert (smag >= 0).all()
        assert (smag <= 0.5).all()

    def test_vectorization_divides_domain(self):
        program = horizontal_diffusion(vectorization=8)
        assert program.shape[-1] % 8 == 0
        program16 = horizontal_diffusion(vectorization=16)
        assert program16.vectorization == 16
