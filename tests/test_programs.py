"""Unit tests for the program catalog and the hdiff construction."""

import numpy as np
import pytest

from repro.errors import DefinitionError
from repro.expr import census, parse
from repro.perf import (
    arithmetic_intensity_ops_per_operand,
    operand_traffic,
    operands_per_cycle,
    program_census,
)
from repro.programs import (
    ALIASES,
    PAPER_CENSUS,
    available_programs,
    build,
    chain,
    dense_stencil_code,
    horizontal_diffusion,
    jacobi3d_code,
    laplace2d,
    resolve_name,
    shallow_water,
    vertical_advection,
)
from repro.run import run_reference


class TestIterative:
    def test_jacobi3d_is_8_ops(self):
        counts = census(parse(jacobi3d_code("a")))
        assert counts.flops == 8

    def test_dense_stencil_op_counts(self):
        for ops in (8, 12, 24, 30):
            counts = census(parse(dense_stencil_code("a", ops)))
            assert counts.flops == ops, ops

    def test_dense_stencil_rejects_odd(self):
        with pytest.raises(DefinitionError):
            dense_stencil_code("a", 9)

    def test_chain_structure(self):
        program = chain(5, shape=(16, 8, 8))
        assert len(program.stencils) == 5
        assert program.outputs == ("s4",)
        assert program.stencil("s2").accessed_fields == ("s1",)

    def test_chain_rank_checks(self):
        with pytest.raises(DefinitionError, match="3D domain"):
            chain(2, shape=(16, 16), kernel="jacobi3d")

    def test_chain_executes(self):
        program = chain(3, shape=(6, 6, 6), kernel="jacobi2d"
                        if False else "jacobi3d")
        rng = np.random.default_rng(0)
        result = run_reference(
            program, {"inp": rng.random((6, 6, 6),
                                        dtype=np.float32)})
        assert result["s2"].data.shape == (6, 6, 6)
        assert np.isfinite(result["s2"].data).all()

    def test_chain_smooths(self):
        # Jacobi iterations reduce variance.
        program = chain(4, shape=(8, 16, 16))
        rng = np.random.default_rng(0)
        inp = rng.random((8, 16, 16), dtype=np.float32)
        result = run_reference(program, {"inp": inp})
        assert result["s3"].data.std() < inp.std()

    def test_catalog(self):
        assert "horizontal_diffusion" in available_programs()
        program = build("laplace2d", shape=(16, 16))
        assert program.stencil_names == ("b",)
        with pytest.raises(DefinitionError, match="unknown program"):
            build("nope")

    def test_catalog_aliases(self):
        for alias, target in ALIASES.items():
            assert resolve_name(alias) == target
        assert build("hdiff", shape=(8, 8, 8)).name == \
            "horizontal_diffusion"

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(DefinitionError, match="did you mean "
                                                  "laplace2d"):
            build("laplce2d")
        with pytest.raises(DefinitionError,
                           match="did you mean shallow_water"):
            resolve_name("shallow_watr")

    def test_laplace_matches_numpy(self):
        program = laplace2d(shape=(8, 8))
        rng = np.random.default_rng(1)
        a = rng.random((8, 8), dtype=np.float32)
        result = run_reference(program, {"a": a})["b"]
        expected = (-4 * a[1:-1, 1:-1] + a[:-2, 1:-1] + a[2:, 1:-1]
                    + a[1:-1, :-2] + a[1:-1, 2:])
        np.testing.assert_allclose(result.valid_view, expected,
                                   rtol=1e-5)


class TestHorizontalDiffusion:
    def test_census_matches_paper_exactly(self):
        counts = program_census(horizontal_diffusion(shape=(16, 16, 8)))
        for key, value in PAPER_CENSUS.items():
            assert getattr(counts, key) == value, key

    def test_operand_traffic(self):
        program = horizontal_diffusion()
        i, j, k = program.shape
        traffic = operand_traffic(program)
        assert traffic.read_operands == 5 * i * j * k + 5 * i
        assert traffic.write_operands == 4 * i * j * k

    def test_arithmetic_intensity(self):
        ai = arithmetic_intensity_ops_per_operand(horizontal_diffusion())
        assert ai == pytest.approx(130 / 9, rel=1e-3)

    def test_operands_per_cycle_near_nine(self):
        assert operands_per_cycle(horizontal_diffusion()) == \
            pytest.approx(9.0, abs=0.01)

    def test_ten_unique_input_fields(self):
        program = horizontal_diffusion()
        assert len(program.inputs) == 10
        three_d = [f for f in program.inputs.values() if len(f.dims) == 3]
        one_d = [f for f in program.inputs.values() if len(f.dims) == 1]
        assert len(three_d) == 5
        assert len(one_d) == 5

    def test_four_outputs(self):
        program = horizontal_diffusion()
        assert sorted(program.outputs) == ["pp_out", "u_out", "v_out",
                                           "w_out"]

    def test_fan_in_range(self):
        # Each non-source stencil receives data from 2-6 other nodes
        # (stencils and memories combined) per Sec. IX-A.
        from repro.graph import StencilGraph
        graph = StencilGraph(horizontal_diffusion(shape=(16, 16, 8)))
        for stencil_id in graph.stencil_ids():
            fan_in = len(graph.in_edges(stencil_id))
            assert 1 <= fan_in <= 6, stencil_id

    def test_executes_functionally(self):
        program = horizontal_diffusion(shape=(12, 12, 4))
        rng = np.random.default_rng(2)
        inputs = {}
        for name, spec in program.inputs.items():
            shape = spec.shape(program.shape, program.index_names)
            inputs[name] = (rng.random(shape, dtype=np.float32) * 0.1
                            + 1.0)
        results = run_reference(program, inputs)
        for out in program.outputs:
            view = results[out].valid_view
            assert view.size > 0
            assert np.isfinite(view).all()

    def test_smag_clamped(self):
        program = horizontal_diffusion(shape=(12, 12, 4))
        rng = np.random.default_rng(2)
        inputs = {}
        for name, spec in program.inputs.items():
            shape = spec.shape(program.shape, program.index_names)
            inputs[name] = (rng.random(shape, dtype=np.float32) * 0.1
                            + 1.0)
        results = run_reference(program, inputs)
        smag = results["smag_u"].valid_view
        assert (smag >= 0).all()
        assert (smag <= 0.5).all()

    def test_vectorization_divides_domain(self):
        program = horizontal_diffusion(vectorization=8)
        assert program.shape[-1] % 8 == 0
        program16 = horizontal_diffusion(vectorization=16)
        assert program16.vectorization == 16


class TestVerticalAdvection:
    def _inputs(self, shape=(8, 8, 8)):
        rng = np.random.default_rng(7)
        return {
            "q": rng.random(shape, dtype=np.float32),
            "w": (rng.random(shape, dtype=np.float32) - 0.5),
            "rdz": rng.random(shape[-1], dtype=np.float32) + 0.5,
        }

    def test_structure(self):
        program = vertical_advection(shape=(8, 8, 8))
        assert program.outputs == ("q_out",)
        assert len(program.stencils) == 5
        # Every halo is vertical: no i/j offsets anywhere.
        for stencil in program.stencils:
            extent = stencil.extent()
            assert extent["i"] == (0, 0)
            assert extent["j"] == (0, 0)

    def test_reference_matches_numpy(self):
        inputs = self._inputs()
        q, w, rdz = inputs["q"], inputs["w"], inputs["rdz"]
        program = vertical_advection(shape=q.shape)
        result = run_reference(program, inputs)["q_out"]

        grad_up = q[:, :, 1:] - q[:, :, :-1]          # at k
        grad_dn = q[:, :, 1:] - q[:, :, :-1]          # at k+1
        # Upwind select on the interior k in [1, K-1).
        flux = np.where(w[:, :, 1:-1] > 0.0,
                        w[:, :, 1:-1] * grad_dn[:, :, :-1],
                        w[:, :, 1:-1] * grad_up[:, :, 1:])
        adv = q[:, :, 1:-1] - \
            np.float32(0.25) * flux * rdz[1:-1]
        q_out = (np.float32(0.25) * (adv[:, :, :-2] + adv[:, :, 2:])
                 + np.float32(0.5) * adv[:, :, 1:-1])
        # adv spans k in [1, K-1); the filter shrinks one more level.
        assert result.valid == ((0, 8), (0, 8), (2, 6))
        np.testing.assert_allclose(result.valid_view, q_out,
                                   rtol=1e-5)

    def test_session_equivalence(self):
        program = vertical_advection(shape=(8, 8, 8))
        from repro.run import Session
        assert Session(program).run(self._inputs()).validated


class TestShallowWater:
    def _inputs(self, shape=(12, 12)):
        rng = np.random.default_rng(11)
        return {name: rng.random(shape, dtype=np.float32)
                for name in ("h", "u", "v")}

    def test_structure(self):
        program = shallow_water(shape=(16, 16))
        assert sorted(program.outputs) == ["h_out", "u_out", "v_out"]
        assert len(program.stencils) == 7

    def test_reference_matches_numpy(self):
        inputs = self._inputs()
        h, u, v = inputs["h"], inputs["u"], inputs["v"]
        program = shallow_water(shape=h.shape)
        results = run_reference(program, inputs)

        c = np.float32(0.5)
        # h_out shrinks in both axes (dudx needs i, dvdy needs j);
        # u_out only in i (dhdx), v_out only in j (dhdy).
        dudx = c * (u[2:, 1:-1] - u[:-2, 1:-1])
        dvdy = c * (v[1:-1, 2:] - v[1:-1, :-2])
        dhdx = c * (h[2:, :] - h[:-2, :])
        dhdy = c * (h[:, 2:] - h[:, :-2])
        h_out = h[1:-1, 1:-1] - np.float32(0.1) * (dudx + dvdy)
        u_out = (u[1:-1, :] - np.float32(0.2) * dhdx
                 - np.float32(0.001) * u[1:-1, :])
        v_out = (v[:, 1:-1] - np.float32(0.2) * dhdy
                 - np.float32(0.001) * v[:, 1:-1])

        for name, expected, valid in (
                ("h_out", h_out, ((1, 11), (1, 11))),
                ("u_out", u_out, ((1, 11), (0, 12))),
                ("v_out", v_out, ((0, 12), (1, 11)))):
            result = results[name]
            assert result.valid == valid, name
            np.testing.assert_allclose(result.valid_view, expected,
                                       rtol=1e-5)

    def test_height_is_conserved_to_first_order(self):
        # With zero winds the height field is unchanged.
        inputs = self._inputs()
        inputs["u"] = np.zeros_like(inputs["u"])
        inputs["v"] = np.zeros_like(inputs["v"])
        program = shallow_water(shape=inputs["h"].shape)
        result = run_reference(program, inputs)["h_out"]
        np.testing.assert_allclose(
            result.valid_view, inputs["h"][1:-1, 1:-1], rtol=1e-6)

    def test_session_equivalence(self):
        program = shallow_water(shape=(12, 12))
        from repro.run import Session
        assert Session(program).run(self._inputs()).validated


class TestImagePipeline:
    """The integer blur→sobel→threshold chain (int64 end to end)."""

    def _image(self, shape=(16, 16), seed=3):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 256, shape).astype(np.int64)

    def _numpy_pipeline(self, img, threshold=20_000):
        """Bit-exact NumPy rendition of the catalog program."""
        blur = (4 * img[1:-1, 1:-1]
                + 2 * (img[:-2, 1:-1] + img[2:, 1:-1]
                       + img[1:-1, :-2] + img[1:-1, 2:])
                + img[:-2, :-2] + img[:-2, 2:]
                + img[2:, :-2] + img[2:, 2:])
        gx = ((blur[2:, :-2] + 2 * blur[2:, 1:-1] + blur[2:, 2:])
              - (blur[:-2, :-2] + 2 * blur[:-2, 1:-1]
                 + blur[:-2, 2:]))
        gy = ((blur[:-2, 2:] + 2 * blur[1:-1, 2:] + blur[2:, 2:])
              - (blur[:-2, :-2] + 2 * blur[1:-1, :-2]
                 + blur[2:, :-2]))
        mag = np.abs(gx) + np.abs(gy)
        return np.where(mag > threshold, mag, 0)

    def test_structure_and_dtypes(self):
        from repro.programs.image_pipeline import image_pipeline
        program = image_pipeline(shape=(16, 16))
        assert program.outputs == ("edges",)
        assert [s.name for s in program.stencils] == \
            ["blur", "gx", "gy", "mag", "edges"]
        for field in ("blur", "gx", "gy", "mag", "edges"):
            assert program.field_dtype(field).name == "int64", field

    def test_catalog_registration(self):
        assert resolve_name("imgpipe") == "image_pipeline"
        program = build("imgpipe", shape=(12, 12))
        assert program.name == "image_pipeline"

    def test_reference_matches_numpy_exactly(self):
        from repro.programs.image_pipeline import image_pipeline
        img = self._image()
        program = image_pipeline(shape=img.shape)
        result = run_reference(program, {"img": img})["edges"]
        # Two shrink-by-one stages: the valid rim is 2 cells.
        assert result.valid == ((2, 14), (2, 14))
        np.testing.assert_array_equal(result.valid_view,
                                      self._numpy_pipeline(img))

    def test_session_equivalence_bit_exact(self):
        from repro.programs.image_pipeline import image_pipeline
        from repro.run import Session
        img = self._image()
        program = image_pipeline(shape=img.shape)
        result = Session(program).run({"img": img}, rtol=0.0, atol=0.0)
        assert result.validated

    def test_huge_values_stay_exact_through_int64_slabs(self):
        # Pixel values beyond 2**53 cannot survive a float64 detour;
        # equality here proves the native int64 slab path end to end.
        from repro.programs.image_pipeline import image_pipeline
        from repro.run import Session
        img = self._image() + (1 << 54)
        program = image_pipeline(shape=img.shape,
                                 threshold=1 << 60)
        result = Session(program).run({"img": img}, rtol=0.0,
                                      atol=0.0)
        assert result.validated
        np.testing.assert_array_equal(
            result.outputs["edges"][2:-2, 2:-2],
            self._numpy_pipeline(img, threshold=1 << 60))

    def test_exploration_exercises_int64_slabs(self):
        # The explorer's frontier must validate the integer chain on
        # the batched engine (the int64 slab path under exploration).
        from repro.explore import ConfigSpace, explore
        from repro.programs.image_pipeline import image_pipeline
        program = image_pipeline(shape=(12, 12))
        space = ConfigSpace(vectorizations=(1, 2),
                            device_counts=(1, 2),
                            network_latencies=(8,))
        report = explore(program, space=space, strategy="exhaustive",
                         inputs={"img": self._image((12, 12))})
        simulated = [e for e in report.entries if e.simulated]
        assert simulated
        assert all(e.engine == "batched" for e in simulated)
        assert any(e.devices_used == 2 for e in simulated)
