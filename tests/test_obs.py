"""Tests for the telemetry subsystem (``repro.obs``): metrics
registry semantics, span capture and Chrome-trace export, journal
span reconstruction, engine profiles, the per-cycle trace engine's
sampling, the no-op-when-disabled overhead contract, and thread-vs-
process sweep metric equivalence."""

import json
import warnings

import pytest

from repro.errors import ValidationError
from repro.explore import ConfigSpace, explore
from repro.obs import (
    EngineProfile,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    journal_spans,
    metrics,
    spans,
    write_chrome_trace,
)
from repro.obs.export import SUPERVISOR_LANE
from repro.programs import laplace2d
from repro.service import ServiceConfig
from repro.simulator import SimulatorConfig, simulate, simulate_traced
from util import lst1_inputs, lst1_program


@pytest.fixture
def telemetry():
    """Swap in fresh, enabled registry and tracer; restore after."""
    old_registry = metrics.set_registry(MetricsRegistry(enabled=True))
    old_tracer = spans.set_tracer(Tracer(enabled=True))
    yield metrics.registry(), spans.tracer()
    metrics.set_registry(old_registry)
    spans.set_tracer(old_tracer)


@pytest.fixture
def disabled_telemetry():
    """Fresh registry/tracer left disabled (the default posture)."""
    old_registry = metrics.set_registry(MetricsRegistry(enabled=False))
    old_tracer = spans.set_tracer(Tracer(enabled=False))
    yield metrics.registry(), spans.tracer()
    metrics.set_registry(old_registry)
    spans.set_tracer(old_tracer)


def _counter_values(registry, name):
    snap = registry.snapshot()
    return {tuple(sorted(rec["labels"].items())): rec["value"]
            for rec in snap["counters"] if rec["name"] == name}


class TestMetricsRegistry:
    def test_counters_by_label(self, telemetry):
        registry, _ = telemetry
        registry.counter("hits", kind="analysis").inc()
        registry.counter("hits", kind="analysis").inc(2)
        registry.counter("hits", kind="sdfg").inc()
        assert registry.counter("hits", kind="analysis").value == 3
        assert registry.counter("hits", kind="sdfg").value == 1
        assert registry.counter_total("hits") == 4

    def test_same_instrument_regardless_of_label_order(self, telemetry):
        registry, _ = telemetry
        a = registry.counter("x", p="1", q="2")
        b = registry.counter("x", q="2", p="1")
        assert a is b

    def test_gauge_keeps_last_value(self, telemetry):
        registry, _ = telemetry
        registry.gauge("workers_live").set(3)
        registry.gauge("workers_live").set(1)
        assert registry.gauge("workers_live").value == 1.0

    def test_histogram_statistics(self, telemetry):
        registry, _ = telemetry
        hist = registry.histogram("seconds")
        for value in (0.002, 0.002, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(3.004)
        assert hist.min == pytest.approx(0.002)
        assert hist.max == pytest.approx(3.0)
        assert hist.mean == pytest.approx(3.004 / 3)
        # 0.002 lands in the 0.005 bucket, 3.0 in the 10.0 bucket.
        by_bound = dict(zip(hist.buckets, hist.bucket_counts))
        assert by_bound[0.005] == 2
        assert by_bound[10.0] == 1

    def test_disabled_registry_is_inert(self, disabled_telemetry):
        registry, _ = disabled_telemetry
        registry.counter("c").inc()
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.counter("c").value == 0
        assert registry.gauge("g").value is None
        assert registry.histogram("h").count == 0
        assert registry.ops == 0

    def test_snapshot_is_json_and_sorted(self, telemetry):
        registry, _ = telemetry
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.histogram("h").observe(0.5)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["schema"] == 1
        assert [rec["name"] for rec in snap["counters"]] == ["a", "b"]
        [hist] = snap["histograms"]
        assert hist["count"] == 1 and hist["mean"] == 0.5

    def test_merge_snapshot_adds_totals(self, telemetry):
        registry, _ = telemetry
        registry.counter("runs").inc(2)
        worker = MetricsRegistry(enabled=True)
        worker.counter("runs").inc(3)
        worker.counter("cycles", engine="batched").inc(100)
        worker.gauge("live").set(7)
        worker.histogram("secs").observe(0.01)
        worker.histogram("secs").observe(2.0)
        registry.merge_snapshot(worker.snapshot())
        assert registry.counter("runs").value == 5
        assert registry.counter(
            "cycles", engine="batched").value == 100
        assert registry.gauge("live").value == 7.0
        merged = registry.histogram("secs")
        assert merged.count == 2
        assert merged.min == pytest.approx(0.01)
        assert merged.max == pytest.approx(2.0)
        assert sum(merged.bucket_counts) == 2


class TestSpans:
    def test_disabled_span_yields_none_and_records_nothing(
            self, disabled_telemetry):
        _, tracer = disabled_telemetry
        with tracer.span("anything") as record:
            assert record is None
        assert tracer.records() == ()

    def test_nesting_builds_parent_links(self, telemetry):
        _, tracer = telemetry
        with tracer.span("outer") as outer:
            with tracer.span("inner", detail="x") as inner:
                pass
        records = {r.name: r for r in tracer.records()}
        assert records["inner"].parent_id == outer.span_id
        assert records["outer"].parent_id is None
        assert records["inner"].attrs == {"detail": "x"}
        assert records["inner"].duration >= 0
        # Inner finished first, so it was recorded first.
        assert [r.name for r in tracer.records()] == ["inner", "outer"]
        assert inner.start >= outer.start

    def test_sibling_spans_share_a_parent(self, telemetry):
        _, tracer = telemetry
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["a"].parent_id == root.span_id
        assert by_name["b"].parent_id == root.span_id

    def test_chrome_export_shape(self, telemetry, tmp_path):
        _, tracer = telemetry
        with tracer.span("work", program="lst1"):
            pass
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer.records())
        spec = json.loads(path.read_text())
        events = spec["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["name"] == "thread_name"
        [event] = [e for e in events if e["ph"] == "X"]
        assert event["name"] == "work"
        assert event["args"]["program"] == "lst1"
        assert event["dur"] >= 0
        # Lanes are remapped to small ints, not raw thread idents.
        assert event["tid"] == 0


def _journal(*records):
    """Synthetic journal records with auto seq numbers."""
    return [dict(rec, seq=i + 1) for i, rec in enumerate(records)]


class TestJournalSpans:
    def test_one_lane_per_worker(self):
        records = _journal(
            {"event": "run_started", "ts": 10.0, "jobs": 2},
            {"event": "worker_spawned", "ts": 10.1, "worker": 1,
             "pid": 100},
            {"event": "worker_spawned", "ts": 10.1, "worker": 2,
             "pid": 101},
            {"event": "job_started", "ts": 10.2, "worker": 1,
             "job": 1},
            {"event": "job_completed", "ts": 10.5, "worker": 1,
             "job": 1},
            {"event": "job_started", "ts": 10.2, "worker": 2,
             "job": 2},
            {"event": "job_failed", "ts": 10.4, "worker": 2,
             "job": 2},
            {"event": "worker_dead", "ts": 10.6, "worker": 1,
             "reason": "clean exit"},
            {"event": "worker_dead", "ts": 10.6, "worker": 2,
             "reason": "clean exit"},
            {"event": "run_completed", "ts": 10.7},
        )
        result = journal_spans(records)
        by_name = {}
        for span in result:
            by_name.setdefault(span.name, []).append(span)
        [run] = by_name["service.run"]
        assert run.tid == SUPERVISOR_LANE
        assert run.start == 10.0 and run.end == 10.7
        assert run.attrs["outcome"] == "run_completed"
        workers = by_name["service.worker"]
        # Worker w gets lane w + 1 (the supervisor holds lane 0).
        assert {w.tid for w in workers} == {2, 3}
        assert {w.tid_name for w in workers} == {"worker-1", "worker-2"}
        assert all(w.parent_id == run.span_id for w in workers)
        jobs = {j.attrs["job"]: j for j in by_name["service.job"]}
        assert jobs[1].tid == 2 and jobs[2].tid == 3
        assert jobs[1].attrs["outcome"] == "job_completed"
        assert jobs[2].attrs["outcome"] == "job_failed"
        assert jobs[2].end == 10.4

    def test_crashed_journal_closes_open_intervals(self):
        records = _journal(
            {"event": "run_started", "ts": 1.0},
            {"event": "worker_spawned", "ts": 1.1, "worker": 1},
            {"event": "job_started", "ts": 1.2, "worker": 1,
             "job": 9},
        )
        result = journal_spans(records)
        by_name = {span.name: span for span in result}
        assert by_name["service.worker"].end == 1.2
        assert by_name["service.worker"].attrs["reason"] == \
            "open-at-end-of-journal"
        assert by_name["service.job"].attrs["outcome"] == \
            "open-at-end-of-journal"

    def test_empty_journal_is_empty(self):
        assert journal_spans([]) == []

    def test_lane_names_survive_chrome_export(self):
        records = _journal(
            {"event": "run_started", "ts": 1.0},
            {"event": "worker_spawned", "ts": 1.1, "worker": 3},
            {"event": "worker_dead", "ts": 2.0, "worker": 3,
             "reason": "clean exit"},
            {"event": "run_completed", "ts": 2.1},
        )
        spec = chrome_trace(journal_spans(records))
        names = {e["args"]["name"] for e in spec["traceEvents"]
                 if e["ph"] == "M"}
        assert names == {"supervisor", "worker-3"}


class TestEngineProfile:
    def test_batched_run_is_self_describing(self, disabled_telemetry):
        program, inputs = lst1_program((6, 6, 6)), lst1_inputs((6, 6, 6))
        result = simulate(program, inputs,
                          SimulatorConfig(engine_mode="batched"))
        profile = result.profile
        assert profile.engine == "batched"
        assert profile.cycles == result.cycles
        assert profile.plan_count > 0
        assert profile.scalar_cycles + profile.batched_cycles \
            == profile.cycles
        assert profile.mean_batch > 1  # batching actually batched
        assert 0.0 <= profile.scalar_fraction < 1.0
        assert profile.wall_seconds > 0
        spec = json.loads(json.dumps(profile.to_json()))
        assert spec["engine"] == "batched"
        assert any("slab passes" in line
                   for line in profile.summary_lines())

    def test_scalar_profile_counts_every_cycle_scalar(
            self, disabled_telemetry):
        program, inputs = lst1_program((6, 6, 6)), lst1_inputs((6, 6, 6))
        result = simulate(program, inputs,
                          SimulatorConfig(engine_mode="scalar"))
        assert result.profile.engine == "scalar"
        assert result.profile.scalar_cycles == result.cycles
        assert result.profile.scalar_fraction == 1.0

    def test_run_metrics_emitted_once_per_run(self, telemetry):
        registry, _ = telemetry
        program, inputs = lst1_program((6, 6, 6)), lst1_inputs((6, 6, 6))
        result = simulate(program, inputs,
                          SimulatorConfig(engine_mode="batched"))
        assert registry.counter(
            "engine.runs", engine="batched").value == 1
        assert registry.counter(
            "engine.cycles", engine="batched").value == result.cycles
        assert registry.counter("engine.plans").value \
            == result.profile.plan_count

    def test_telemetry_ops_do_not_scale_with_cycles(self, telemetry):
        """The overhead contract: a longer simulation performs the
        same number of instrument mutations as a short one — the
        engines aggregate locally and emit once per run."""
        registry, _ = telemetry
        shapes = ((6, 6, 6), (12, 12, 12))
        config = SimulatorConfig(engine_mode="batched")
        for shape in shapes:  # warm the artifact cache for both
            simulate(lst1_program(shape), lst1_inputs(shape), config)
        deltas, cycle_counts = [], []
        for shape in shapes:
            before = registry.ops
            result = simulate(lst1_program(shape), lst1_inputs(shape),
                              config)
            deltas.append(registry.ops - before)
            cycle_counts.append(result.cycles)
        assert cycle_counts[1] > 2 * cycle_counts[0]
        assert deltas[0] == deltas[1]

    def test_disabled_telemetry_is_free_and_identical(
            self, disabled_telemetry):
        registry, tracer = disabled_telemetry
        program, inputs = lst1_program((6, 6, 6)), lst1_inputs((6, 6, 6))
        result = simulate(program, inputs,
                          SimulatorConfig(engine_mode="batched"))
        assert registry.ops == 0
        assert tracer.records() == ()
        registry.enabled = True
        enabled = simulate(program, inputs,
                           SimulatorConfig(engine_mode="batched"))
        assert enabled.cycles == result.cycles
        for name in ("stall_cycles", "channel_occupancy"):
            assert getattr(enabled, name) == getattr(result, name)


class TestTracedSimulation:
    def test_sampling_cadence_and_series(self, disabled_telemetry):
        program, inputs = lst1_program((6, 6, 6)), lst1_inputs((6, 6, 6))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result, trace = simulate_traced(program, inputs,
                                            sample_every=4)
        assert trace.sample_every == 4
        assert trace.cycles[0] == 0
        assert all(b - a == 4 for a, b in zip(trace.cycles,
                                              trace.cycles[1:]))
        assert trace.cycles[-1] < result.cycles
        for series in trace.occupancy.values():
            assert len(series) == len(trace.cycles)
        # Peaks can undershoot the true high-water mark (sampling)
        # but never overshoot it.
        for channel, peak in result.channel_occupancy.items():
            assert trace.peak_occupancy(channel) <= peak
        for unit, series in trace.progress.items():
            fraction = trace.stalled_fraction(unit)
            assert 0.0 <= fraction <= 1.0
            # Progress counters are cumulative, so monotone.
            assert all(b >= a for a, b in zip(series, series[1:]))
        assert "stalled" in trace.summary()

    def test_auto_mode_warns_and_forces_scalar(self, disabled_telemetry):
        program, inputs = lst1_program((6, 6, 6)), lst1_inputs((6, 6, 6))
        with pytest.warns(UserWarning, match="forces the scalar "
                                             "engine"):
            result, _ = simulate_traced(program, inputs)
        assert result.profile.engine == "scalar"

    def test_explicit_batched_mode_is_rejected(self, disabled_telemetry):
        program, inputs = lst1_program((6, 6, 6)), lst1_inputs((6, 6, 6))
        with pytest.raises(ValidationError, match="cannot be traced"):
            simulate_traced(program, inputs,
                            SimulatorConfig(engine_mode="batched"))

    def test_scalar_mode_is_accepted_silently(self, disabled_telemetry):
        program, inputs = lst1_program((6, 6, 6)), lst1_inputs((6, 6, 6))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result, _ = simulate_traced(
                program, inputs, SimulatorConfig(engine_mode="scalar"))
        untraced = simulate(program, inputs,
                            SimulatorConfig(engine_mode="scalar"))
        assert result.cycles == untraced.cycles


def _sweep(tmp_path, backend):
    program = laplace2d().with_shape((24, 24))
    kwargs = {}
    if backend == "process":
        kwargs["service"] = ServiceConfig(
            run_root=tmp_path / f"service-{backend}",
            heartbeat_interval=0.05, poll=0.01, join_timeout=3.0)
    return explore(program,
                   space=ConfigSpace(vectorizations=(1, 2)),
                   strategy="exhaustive", workers=2, persist=False,
                   backend=backend, **kwargs)


class TestSweepTelemetry:
    #: Counters whose totals must not depend on the backend.
    EQUIVALENT = ("explore.sweeps", "explore.points_priced",
                  "explore.points_measured", "explore.cache_hits",
                  "engine.runs", "engine.cycles")

    def test_thread_and_process_totals_match(self, tmp_path):
        totals = {}
        for backend in ("thread", "process"):
            old_registry = metrics.set_registry(
                MetricsRegistry(enabled=True))
            old_tracer = spans.set_tracer(Tracer(enabled=True))
            try:
                report = _sweep(tmp_path, backend)
                assert not report.failed_points
                totals[backend] = {
                    name: metrics.registry().counter_total(name)
                    for name in self.EQUIVALENT}
                if backend == "process":
                    process_spans = spans.tracer().records()
            finally:
                metrics.set_registry(old_registry)
                spans.set_tracer(old_tracer)
        assert totals["thread"] == totals["process"]
        assert totals["thread"]["explore.points_measured"] == 2
        assert totals["thread"]["engine.runs"] == 2
        # The process sweep also reconstructed per-worker lanes from
        # the journal: every worker gets its own (tid, name) lane.
        workers = [s for s in process_spans
                   if s.name == "service.worker"]
        assert workers
        assert len({(w.tid, w.tid_name) for w in workers}) \
            == len(workers)
        assert all(w.tid_name.startswith("worker-") for w in workers)
        [run] = [s for s in process_spans if s.name == "service.run"]
        assert run.tid == SUPERVISOR_LANE

    def test_prune_reason_labels_are_bounded(self, telemetry):
        from repro.explore.prune import reason_label
        assert reason_label(None) == "none"
        assert reason_label(
            "vectorization 3 does not divide extent 8") \
            == "vectorization-indivisible"
        assert reason_label("placement failed: no feasible cut") \
            == "placement"
        assert reason_label(
            "design overflows platform logic by 2.1x") \
            == "resource-overflow"
        assert reason_label("link b1->b2 rate 0.5 under-provisioned") \
            == "network"
        assert reason_label("anything else entirely") == "other"
