"""Tests for the unified lowering pipeline (repro.lowering).

Covers the staged PassManager, the content-addressed artifact cache
(hit/miss behavior, content-keyed sharing), transform composition
(fusion∘canonicalize idempotence), and the contract that every entry
point — Session, engine, CLI — lowers to *the same* artifact.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.lowering import (
    ArtifactCache,
    LoweringConfig,
    PIPELINE_STAGES,
    PassManager,
    analysis_for,
    compiled_stencil,
    content_key,
    default_cache,
    freeze_placement,
    lower,
    program_content_hash,
    reset_default_cache,
)
from repro.programs import build, horizontal_diffusion, laplace2d
from repro.run import Session
from repro.transforms import canonicalize
from util import lst1_inputs, lst1_program


@pytest.fixture(autouse=True)
def _fresh_cache():
    reset_default_cache()
    yield
    reset_default_cache()


class TestArtifactCache:
    def test_get_or_build_counts_hits_and_misses(self):
        cache = ArtifactCache()
        key = content_key("analysis", "x")
        assert cache.get_or_build(key, lambda: 41) == 41
        assert cache.get_or_build(key, lambda: 42) == 41
        assert cache.stats("analysis") == (1, 1)
        assert cache.stats() == (1, 1)

    def test_stats_are_per_kind(self):
        cache = ArtifactCache()
        cache.get_or_build(content_key("sdfg", 1), lambda: "a")
        cache.get_or_build(content_key("analysis", 1), lambda: "b")
        cache.get_or_build(content_key("analysis", 1), lambda: "c")
        assert cache.stats_by_kind() == {"sdfg": (0, 1),
                                         "analysis": (1, 1)}

    def test_eviction_is_bounded(self):
        cache = ArtifactCache(max_entries=4)
        for n in range(10):
            cache.get_or_build(content_key("x", n), lambda n=n: n)
        assert len(cache) == 4
        # Oldest entries were evicted; newest survive.
        assert cache.peek(content_key("x", 9)) == 9
        assert cache.peek(content_key("x", 0)) is None

    def test_content_key_is_deterministic(self):
        assert content_key("a", [1, 2], {"k": 3.0}) == \
            content_key("a", [1, 2], {"k": 3.0})
        assert content_key("a", 1) != content_key("b", 1)


class TestContentHash:
    def test_formatting_does_not_change_identity(self):
        # A no-op canonicalization rewrites the code text but not the
        # expression: the content hash must not move.
        program = laplace2d(shape=(8, 8))
        folded = canonicalize(program, fuse=False)
        assert folded.stencils[0].code != program.stencils[0].code
        assert program_content_hash(folded) == \
            program_content_hash(program)

    def test_width_normalized_family_hash(self):
        program = laplace2d(shape=(8, 8))
        wide = program.with_vectorization(4)
        assert program_content_hash(wide) != \
            program_content_hash(program)
        assert program_content_hash(wide, normalize_width=True) == \
            program_content_hash(program, normalize_width=True)

    def test_shape_changes_identity(self):
        assert program_content_hash(laplace2d(shape=(8, 8))) != \
            program_content_hash(laplace2d(shape=(16, 16)))


class TestPassManager:
    def test_stage_order_is_documented(self):
        manager = PassManager()
        names = [p.name for p in manager.passes]
        # Every eager pass appears in the documented stage order.
        positions = [PIPELINE_STAGES.index(n) for n in names
                     if n in PIPELINE_STAGES]
        assert positions == sorted(positions)

    def test_lower_accepts_json_and_path(self, tmp_path):
        program = lst1_program()
        from_obj = lower(program)
        from_json = lower(program.to_json())
        path = tmp_path / "p.json"
        path.write_text(program.to_json_string())
        from_file = lower(path)
        assert from_obj.program_hash == from_json.program_hash \
            == from_file.program_hash

    def test_transforms_apply_in_stage_order(self):
        program = horizontal_diffusion(shape=(16, 16, 8))
        artifact = lower(program, LoweringConfig(
            canonicalize=True, fusion=True, vectorization=4))
        expected = canonicalize(program).with_vectorization(4)
        assert program_content_hash(artifact.program) == \
            program_content_hash(expected)

    def test_placement_strategy_and_explicit_agree(self):
        program = lst1_program()
        by_strategy = lower(program, LoweringConfig(
            placement="contiguous", devices=2, network_latency=16))
        explicit = lower(program, LoweringConfig(
            device_of=freeze_placement(by_strategy.device_of),
            network_latency=16))
        assert explicit.device_of == by_strategy.device_of
        assert explicit.edge_latency == by_strategy.edge_latency
        assert explicit.analysis is by_strategy.analysis

    def test_conflicting_placement_config_rejected(self):
        with pytest.raises(ValidationError, match="not both"):
            LoweringConfig(placement="auto", device_of=(("a", 0),))
        with pytest.raises(ValidationError, match="strategy"):
            LoweringConfig(placement="scatter")


class TestPassCacheBehavior:
    def test_repeated_lowering_hits_every_stage(self):
        program = lst1_program()
        first = lower(program)
        _ = first.analysis
        before = default_cache().stats("analysis")
        second = lower(program)
        _ = second.analysis
        after = default_cache().stats("analysis")
        assert second.analysis is first.analysis
        assert after[1] == before[1]  # no new analysis builds
        assert after[0] > before[0]

    def test_mapping_knobs_do_not_invalidate_transforms(self):
        program = lst1_program()
        lower(program, LoweringConfig(canonicalize=True, fusion=True))
        hits0, misses0 = default_cache().stats("canonicalize")
        # Different network latency, same transforms: the transform
        # stages must be served from cache.
        lower(program, LoweringConfig(canonicalize=True, fusion=True,
                                      placement="contiguous",
                                      devices=2, network_latency=99))
        hits1, misses1 = default_cache().stats("canonicalize")
        assert misses1 == misses0
        assert hits1 == hits0 + 1

    def test_single_device_latency_value_shares_artifacts(self):
        # Latency only matters when something spans devices.
        program = lst1_program()
        a = lower(program, LoweringConfig(network_latency=32))
        b = lower(program, LoweringConfig(network_latency=999))
        assert a.key == b.key
        assert a.analysis is b.analysis

    def test_multi_device_latency_value_separates_artifacts(self):
        program = lst1_program()
        a = lower(program, LoweringConfig(placement="contiguous",
                                          devices=2,
                                          network_latency=16))
        b = lower(program, LoweringConfig(placement="contiguous",
                                          devices=2,
                                          network_latency=64))
        assert a.key != b.key
        assert a.analysis is not b.analysis

    def test_compiled_stencil_shared_across_modes(self):
        program = lst1_program()
        ast = program.stencils[0].ast
        cell_one = compiled_stencil(ast)
        cell_two = compiled_stencil(ast)
        array = compiled_stencil(ast, mode="array")
        assert cell_one is cell_two
        assert array is not cell_one
        assert default_cache().stats("compile") == (1, 2)

    def test_analysis_for_custom_model_bypasses_cache(self):
        from repro.expr.latency import LatencyModel
        program = lst1_program()
        cached = analysis_for(program)
        custom = analysis_for(program,
                              latency_model=LatencyModel())
        assert custom is not cached


class TestTransformComposition:
    """Satellite: fusion∘canonicalize idempotence and friends."""

    def test_canonicalize_idempotent_through_pipeline(self):
        program = horizontal_diffusion(shape=(16, 16, 8))
        config = LoweringConfig(canonicalize=True, fusion=True)
        once = lower(program, config)
        twice = lower(once.program, config)
        assert twice.program_hash == once.program_hash
        assert twice.analysis is once.analysis

    def test_fold_idempotent(self):
        program = lst1_program()
        once = lower(program, LoweringConfig(canonicalize=True))
        twice = lower(once.program, LoweringConfig(canonicalize=True))
        assert twice.program_hash == once.program_hash

    def test_noop_transforms_share_lowered_artifacts(self):
        # laplace2d has nothing to fold and nothing to fuse: all four
        # transform-flag combinations must collapse onto one lowered
        # artifact (and therefore one analysis).
        program = laplace2d(shape=(8, 8))
        artifacts = [
            lower(program, LoweringConfig(canonicalize=cz, fusion=fu))
            for cz in (False, True) for fu in (False, True)]
        hashes = {a.program_hash for a in artifacts}
        assert len(hashes) == 1
        analyses = {id(a.analysis) for a in artifacts}
        assert len(analyses) == 1

    def test_transformed_run_still_validates(self):
        program = lst1_program()
        artifact = lower(program, LoweringConfig(canonicalize=True,
                                                 fusion=True))
        session = Session(artifact.program)
        assert session.run(lst1_inputs()).validated


class TestEntryPointEquality:
    """Satellite: Session and CLI lower to identical artifacts."""

    def test_session_and_cli_share_the_artifact(self):
        program = lst1_program()
        session = Session(program)
        session_analysis = session.analysis
        # What ``repro analyze`` does:
        cli_artifact = lower(program)
        assert cli_artifact.key == session.lowered().key
        assert cli_artifact.analysis is session_analysis
        # What ``repro run`` / engine.simulate does:
        from repro.simulator.engine import build_simulator
        simulator = build_simulator(program)
        assert simulator.analysis is session_analysis

    def test_session_canonicalize_matches_pipeline_config(self):
        program = horizontal_diffusion(shape=(16, 16, 8))
        session = Session(program, canonicalize=True)
        direct = lower(program, LoweringConfig(canonicalize=True,
                                               fusion=True))
        assert session.lowered().program_hash == direct.program_hash

    def test_session_run_results_identical_through_pipeline(self):
        program = lst1_program()
        inputs = lst1_inputs()
        via_session = Session(program).run(inputs)
        from repro.simulator import simulate
        via_engine = simulate(program, inputs)
        assert via_session.simulation.cycles == via_engine.cycles
        for name, data in via_session.outputs.items():
            np.testing.assert_array_equal(data,
                                          via_engine.outputs[name])

    def test_sdfg_artifact_cached(self):
        program = lst1_program()
        artifact = lower(program)
        assert artifact.sdfg() is artifact.sdfg()
        session = Session(program)
        assert session.sdfg() is artifact.sdfg()


class TestSessionMappingKnobs:
    def test_session_rejects_placement_in_lowering_config(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError, match="placement"):
            Session(lst1_program(), lowering=LoweringConfig(
                placement="contiguous", devices=2))
        with pytest.raises(ValidationError, match="placement"):
            Session(lst1_program(), lowering=LoweringConfig(
                device_of=(("b0", 0),)))

    def test_family_hash_is_lazy_and_consistent(self):
        program = lst1_program()
        plain = lower(program)
        wide = lower(program, LoweringConfig(vectorization=4))
        assert plain.family_hash == plain.program_hash
        assert wide.family_hash != wide.program_hash
        assert wide.family_hash == plain.family_hash
