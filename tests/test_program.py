"""Unit tests for StencilProgram definition, validation and JSON I/O."""

import pytest

from repro.core import StencilProgram
from repro.errors import DefinitionError
from util import lst1_program, lst1_spec


class TestConstruction:
    def test_lst1_parses(self):
        program = lst1_program()
        assert program.stencil_names == ("b0", "b1", "b2", "b3", "b4")
        assert program.rank == 3
        assert program.num_cells == 512

    def test_index_names_by_rank(self):
        program = lst1_program()
        assert program.index_names == ("i", "j", "k")

    def test_2d_program(self):
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
            "outputs": ["s"],
            "shape": [16, 16],
            "program": {"s": {"code": "a[i,j-1] + a[i,j+1]",
                              "boundary_condition": "shrink"}},
        })
        assert program.rank == 2
        assert program.index_names == ("i", "j")

    def test_string_code_shorthand(self):
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i"]}},
            "outputs": ["s"],
            "shape": [16],
            "program": {"s": "a[i] + 1"},
        })
        assert program.stencil("s").boundary.shrink

    def test_consumers_of(self):
        program = lst1_program()
        assert set(program.consumers_of("b0")) == {"b1", "b2"}
        assert program.consumers_of("b4") == ()

    def test_field_dims(self):
        program = lst1_program()
        assert program.field_dims("a2") == ("i", "k")
        assert program.field_dims("b0") == ("i", "j", "k")

    def test_field_dtype(self):
        program = lst1_program()
        assert program.field_dtype("a0").name == "float32"
        assert program.field_dtype("b4").name == "float32"

    def test_stencil_lookup(self):
        program = lst1_program()
        assert program.stencil("b3").name == "b3"
        with pytest.raises(DefinitionError):
            program.stencil("nope")

    def test_with_vectorization(self):
        program = lst1_program().with_vectorization(4)
        assert program.vectorization == 4


class TestValidation:
    def _spec(self, **overrides):
        spec = lst1_spec()
        spec.update(overrides)
        return spec

    def test_missing_key(self):
        spec = self._spec()
        del spec["outputs"]
        with pytest.raises(DefinitionError, match="missing top-level"):
            StencilProgram.from_json(spec)

    def test_too_many_dims(self):
        with pytest.raises(DefinitionError, match="1, 2, or 3"):
            StencilProgram.from_json(self._spec(shape=[4, 4, 4, 4]))

    def test_nonpositive_extent(self):
        with pytest.raises(DefinitionError, match="non-positive"):
            StencilProgram.from_json(self._spec(shape=[4, 0, 4]))

    def test_vectorization_must_divide(self):
        with pytest.raises(DefinitionError, match="divide"):
            StencilProgram.from_json(self._spec(vectorization=3))

    def test_unknown_output(self):
        with pytest.raises(DefinitionError, match="not produced"):
            StencilProgram.from_json(self._spec(outputs=["zz"]))

    def test_undefined_field_read(self):
        spec = self._spec()
        spec["program"]["b1"]["code"] = "qq[i,j,k] + 1"
        with pytest.raises(DefinitionError, match="undefined field"):
            StencilProgram.from_json(spec)

    def test_cycle_rejected(self):
        spec = {
            "inputs": {"a": {"dtype": "float32", "dims": ["i"]}},
            "outputs": ["x"],
            "shape": [8],
            "program": {
                "x": {"code": "y[i] + 1", "boundary_condition": "shrink"},
                "y": {"code": "x[i] + 1", "boundary_condition": "shrink"},
            },
        }
        with pytest.raises(DefinitionError, match="cycle"):
            StencilProgram.from_json(spec)

    def test_wrong_access_dims(self):
        from repro.errors import StencilFlowError
        spec = self._spec()
        spec["program"]["b1"]["code"] = "a2[i,j,k] + 1"
        with pytest.raises(StencilFlowError, match="declared over dims"):
            StencilProgram.from_json(spec)

    def test_duplicate_name_with_input(self):
        spec = self._spec()
        spec["program"]["a0"] = {"code": "a1[i,j,k]",
                                 "boundary_condition": "shrink"}
        with pytest.raises(DefinitionError, match="duplicate"):
            StencilProgram.from_json(spec)

    def test_empty_program(self):
        with pytest.raises(DefinitionError, match="no stencils"):
            StencilProgram.from_json(self._spec(program={}))


class TestSerialization:
    def test_roundtrip(self):
        program = lst1_program()
        again = StencilProgram.from_json_string(program.to_json_string())
        assert again.to_json() == program.to_json()

    def test_file_roundtrip(self, tmp_path):
        program = lst1_program()
        path = tmp_path / "prog.json"
        path.write_text(program.to_json_string())
        again = StencilProgram.from_json_file(path)
        assert again.to_json() == program.to_json()

    def test_extent(self):
        program = lst1_program()
        assert program.stencil("b3").extent() == {
            "i": (-1, 1), "j": (0, 0), "k": (0, 0)}
