"""The config-query service: frontier index, HTTP endpoint, jobs.

Covers the serve acceptance surface end to end, against a live server
on an ephemeral port:

* warm queries are answered from the in-memory index (no lowering, no
  simulation — asserted via the artifact-cache stats);
* a cache miss returns 202 and enqueues exactly one supervised job,
  and the poll endpoint converges to the measured best;
* PR 3-8 era reports (no ``schema_version``, no ``family_hash``) are
  upgraded in place at warm-load and become servable;
* the index stays consistent under concurrent queries while a
  background sweep inserts into it.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.errors import ParseError
from repro.explore import (
    ConfigSpace,
    REPORT_SCHEMA_VERSION,
    iter_stored_reports,
    report_store_dir,
    upgrade_report_json,
)
from repro.serve import (
    FrontierIndex,
    JobManager,
    QuerySpec,
    ReproServer,
    ServeConfig,
    ServeRequestError,
    parse_query,
    parse_shape,
    query_log_path,
    snapshot_path,
)

SHAPE = (16, 16, 8)
SMALL = ConfigSpace(vectorizations=(1,), device_counts=(1,),
                    partitions=("contiguous",), network_rates=(1.0,),
                    network_latencies=(32,), channel_depths=(8,))


def seed_report(shape=SHAPE, program="hdiff"):
    """Run one tiny persisted sweep so the store has a front."""
    return api.explore(program, shape=shape, space=SMALL,
                       strategy="exhaustive", backend="thread")


def make_server(**overrides):
    config = ServeConfig(port=0, backend="thread", max_devices=1,
                         beam_width=1,
                         explore_kwargs={"space": SMALL,
                                         "strategy": "exhaustive"},
                         **overrides)
    return ReproServer(config).start()


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) \
                as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_job(server, job_id, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = get(server, f"/v1/jobs/{job_id}")
        assert status == 200
        if body["job"]["state"] in ("done", "failed"):
            return body["job"]
        time.sleep(0.2)
    pytest.fail(f"job {job_id} did not finish within {timeout}s")


class TestSchema:
    def test_parse_shape(self):
        assert parse_shape("16,16,8") == (16, 16, 8)
        with pytest.raises(ServeRequestError):
            parse_shape("16,zero")
        with pytest.raises(ServeRequestError):
            parse_shape("0,4")

    def test_parse_query_requires_program(self):
        with pytest.raises(ServeRequestError):
            parse_query({})

    def test_body_wins_over_params(self):
        spec = parse_query({"program": "a", "shape": "1,2"},
                           {"program": "b", "shape": [3, 4]})
        assert spec == QuerySpec(program="b", shape=(3, 4))

    def test_upgrade_rejects_newer_schema(self):
        with pytest.raises(ParseError):
            upgrade_report_json(
                {"schema_version": REPORT_SCHEMA_VERSION + 1})

    def test_upgrade_stamps_and_defaults(self):
        out, changed = upgrade_report_json({"program": "p"})
        assert changed
        assert out["schema_version"] == REPORT_SCHEMA_VERSION
        assert out["family_hash"] is None
        again, changed = upgrade_report_json(out)
        assert not changed


class TestReportStore:
    def test_persisted_sweep_lands_in_store(self, tmp_path):
        report = seed_report()
        paths = list(iter_stored_reports())
        assert len(paths) == 1
        spec = json.loads(paths[0].read_text())
        assert spec["schema_version"] == REPORT_SCHEMA_VERSION
        assert spec["family_hash"] == report.family_hash
        assert report.family_hash is not None

    def test_latest_sweep_per_triple_wins(self):
        seed_report()
        seed_report()  # same triple: overwrites, no duplicate
        assert len(list(iter_stored_reports())) == 1

    def test_unpersisted_sweep_stays_out(self):
        api.explore("hdiff", shape=SHAPE, space=SMALL,
                    strategy="exhaustive", backend="thread",
                    persist=False)
        assert list(iter_stored_reports()) == []


class TestFrontierIndex:
    def test_warm_load_and_locate(self):
        seed_report()
        index, stats = FrontierIndex.warm_load()
        assert stats.reports_loaded == 1
        assert len(index) == 1
        entry, key = index.locate("hdiff", SHAPE,
                                  api.resolve_platform(None).name)
        assert entry is not None
        assert entry.key == key
        assert entry.best["simulated_cycles"] > 0

    def test_locate_memoizes_requests(self):
        seed_report()
        index, _ = FrontierIndex.warm_load()
        platform = api.resolve_platform(None).name
        index.locate("hdiff", SHAPE, platform)
        first_hits = index.hits
        index.locate("hdiff", SHAPE, platform)
        assert index.hits == first_hits + 1

    def test_stale_v1_report_upgraded_in_place_and_served(self):
        seed_report()
        path = next(iter(iter_stored_reports()))
        spec = json.loads(path.read_text())
        del spec["schema_version"]   # regress to the PR 3-8 era
        del spec["family_hash"]
        path.write_text(json.dumps(spec))

        index, stats = FrontierIndex.warm_load()
        assert stats.reports_loaded == 1
        assert stats.reports_upgraded == 1
        entry, _ = index.locate("hdiff", SHAPE,
                                api.resolve_platform(None).name)
        assert entry is not None
        rewritten = json.loads(path.read_text())
        assert rewritten["schema_version"] == REPORT_SCHEMA_VERSION
        assert rewritten["family_hash"] == entry.family_hash

    def test_corrupt_report_skipped_not_fatal(self):
        seed_report()
        store = report_store_dir()
        (store / "report-deadbeef00000000.json").write_text("{ nope")
        index, stats = FrontierIndex.warm_load()
        assert len(index) == 1
        assert stats.reports_skipped == 1

    def test_snapshot_roundtrip(self):
        seed_report()
        index, _ = FrontierIndex.warm_load()
        path = index.save_snapshot()
        assert path == snapshot_path()
        snap = json.loads(path.read_text())
        assert len(snap["entries"]) == 1
        assert snap["entries"][0]["shape"] == list(SHAPE)


class TestQueryFacade:
    def test_miss_without_jobs_returns_none(self):
        assert api.query("hdiff", shape=SHAPE,
                         index=FrontierIndex()) is None

    def test_hit_carries_lookup_latency_and_versions(self):
        seed_report()
        index, _ = FrontierIndex.warm_load()
        response = api.query("hdiff", shape=SHAPE, index=index)
        assert response["kind"] == "best"
        assert response["schema_version"] == 1
        assert response["report_schema_version"] == \
            REPORT_SCHEMA_VERSION
        assert response["lookup_seconds"] >= 0.0
        assert response["source"]["program"] == \
            "horizontal_diffusion"

    def test_pareto_view(self):
        seed_report()
        index, _ = FrontierIndex.warm_load()
        response = api.query("hdiff", shape=SHAPE, pareto=True,
                             index=index)
        assert response["kind"] == "pareto"
        assert len(response["pareto"]) >= 1


class TestLiveServer:
    def test_warm_hit_miss_job_roundtrip(self):
        seed_report()
        server = make_server()
        try:
            # Warm: served from the index, never touching the
            # lowering artifact cache.
            from repro.lowering import default_cache
            default_cache().reset_stats()
            status, body = get(server,
                               "/v1/best?program=hdiff&shape=16,16,8")
            assert status == 200
            assert body["kind"] == "best"
            assert body["best"]["simulated_cycles"] > 0
            assert default_cache().misses == 0

            status, body = get(
                server, "/v1/pareto?program=hdiff&shape=16,16,8")
            assert status == 200
            assert len(body["pareto"]) >= 1

            # Cold: 202 + job, and a duplicate miss shares the job.
            status, body = get(server,
                               "/v1/best?program=hdiff&shape=8,8,4")
            assert status == 202
            assert body["kind"] == "miss"
            job_id = body["job"]["job_id"]
            assert body["job"]["poll"] == f"/v1/jobs/{job_id}"
            status, body = get(server,
                               "/v1/best?program=hdiff&shape=8,8,4")
            if status == 202:  # sweep still running: shares the job
                assert body["job"]["job_id"] == job_id
            else:              # sweep already landed: warm answer
                assert status == 200

            job = wait_job(server, job_id)
            assert job["state"] == "done", job.get("error")
            assert job["best"]["simulated_cycles"] > 0

            # Converged: the same query is warm now.
            status, body = get(server,
                               "/v1/best?program=hdiff&shape=8,8,4")
            assert status == 200
            assert body["best"]["simulated_cycles"] == \
                job["best"]["simulated_cycles"]
        finally:
            server.close()

    def test_post_with_inline_program(self):
        report = seed_report()
        server = make_server()
        try:
            payload = json.dumps({
                "program": report.best and
                api.resolve_program("hdiff", shape=SHAPE).to_json(),
            }).encode()
            request = urllib.request.Request(
                server.url + "/v1/best", data=payload,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) \
                    as response:
                body = json.loads(response.read())
            assert response.status == 200
            assert body["kind"] == "best"
        finally:
            server.close()

    def test_health_and_metrics(self):
        seed_report()
        server = make_server()
        try:
            status, body = get(server, "/v1/healthz")
            assert status == 200
            assert body["ok"] is True
            assert body["index_entries"] == 1
            assert body["warm"]["reports_loaded"] == 1
            assert set(body["jobs"]) == {"queued", "running",
                                         "done", "failed"}

            get(server, "/v1/best?program=hdiff&shape=16,16,8")
            status, body = get(server, "/v1/metricsz")
            assert status == 200
            snapshot = body["metrics"]
            assert snapshot["schema"] == 1
            names = {rec["name"] for rec in snapshot["counters"]}
            assert "serve.requests" in names
            assert "serve.query_hits" in names
            histograms = {rec["name"]
                          for rec in snapshot["histograms"]}
            assert "serve.lookup_seconds" in histograms
        finally:
            server.close()

    def test_errors_are_schema_shaped(self):
        server = make_server()
        try:
            status, body = get(server, "/v1/best?shape=4,4")
            assert status == 400
            assert body["kind"] == "error"
            assert "program" in body["error"]
            status, body = get(server, "/v1/nope")
            assert status == 404
            status, body = get(server, "/v1/jobs/doesnotexist")
            assert status == 404
            status, body = get(server,
                               "/v1/best?program=hdiff&shape=0,0")
            assert status == 400
        finally:
            server.close()

    def test_unknown_program_is_400_not_job(self):
        server = make_server()
        try:
            status, body = get(server, "/v1/best?program=nosuch")
            assert status == 400
            assert body["kind"] == "error"
            status, health = get(server, "/v1/healthz")
            assert health["jobs"]["queued"] + \
                health["jobs"]["running"] == 0
        finally:
            server.close()

    def test_query_log_written(self):
        seed_report()
        server = make_server()
        try:
            get(server, "/v1/best?program=hdiff&shape=16,16,8")
        finally:
            server.close()
        lines = [json.loads(line) for line in
                 query_log_path().read_text().splitlines()]
        assert any(line["outcome"] == "hit" and
                   line["endpoint"] == "best" for line in lines)

    def test_concurrent_queries_during_background_sweep(self):
        """Warm queries stay correct and lock-consistent while a
        miss-triggered sweep mutates the index from its own thread."""
        seed_report()
        server = make_server()
        try:
            status, body = get(server,
                               "/v1/best?program=hdiff&shape=8,8,4")
            assert status == 202
            job_id = body["job"]["job_id"]

            failures = []
            def hammer():
                for _ in range(20):
                    code, data = get(
                        server,
                        "/v1/best?program=hdiff&shape=16,16,8")
                    if code != 200 or \
                            data["best"]["simulated_cycles"] <= 0:
                        failures.append((code, data))
            threads = [threading.Thread(target=hammer)
                       for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert not failures
            job = wait_job(server, job_id)
            assert job["state"] == "done", job.get("error")
        finally:
            server.close()


class TestJobManager:
    def test_identical_misses_fund_exactly_one_job(self):
        """Dedupe is deterministic at the manager level: while a job
        for a triple is active, re-enqueueing returns it instead of
        forking a second sweep."""
        index = FrontierIndex()
        manager = JobManager(
            index, backend="thread",
            explore_kwargs={"space": SMALL,
                            "strategy": "exhaustive"})
        platform = api.resolve_platform(None)
        key = ("family", (8, 8, 4), platform.name)
        manager._sema.acquire()  # hold the only slot: job stays queued
        try:
            job1, created1 = manager.enqueue("hdiff", (8, 8, 4),
                                             platform, key)
            job2, created2 = manager.enqueue("hdiff", (8, 8, 4),
                                             platform, key)
            assert created1 and not created2
            assert job1.job_id == job2.job_id
            assert manager.counts()["queued"] == 1
        finally:
            manager._sema.release()
        assert manager.wait_all(180)
        assert manager.get(job1.job_id).state == "done", \
            manager.get(job1.job_id).error
        assert len(index) == 1


class TestApiFacade:
    def test_reexported_from_package(self):
        import repro
        assert repro.api is api

    def test_resolve_program_forms(self, tmp_path):
        by_name = api.resolve_program("hdiff", shape=SHAPE)
        assert by_name.shape == SHAPE
        by_json = api.resolve_program(by_name.to_json())
        assert by_json.name == by_name.name
        assert api.resolve_program(by_name) is by_name
        with pytest.raises(ParseError):
            api.resolve_program(42)

    def test_resolve_platform_forms(self):
        default = api.resolve_platform(None)
        assert api.resolve_platform("stratix10") is default
        assert api.resolve_platform(default.name) is default
        assert api.resolve_platform("arria10").name == \
            "Arria 10 GX 1150"
        with pytest.raises(Exception):
            api.resolve_platform("tpu")

    def test_run_facade_validates(self):
        result = api.run("hdiff", shape=(12, 12, 6))
        assert result.validated

    def test_serve_facade(self):
        seed_report()
        server = api.serve(port=0, backend="thread")
        try:
            status, body = get(server, "/v1/healthz")
            assert status == 200
        finally:
            server.close()
