"""Unit tests for repro.core.dtypes."""

import numpy as np
import pytest

from repro.core import dtypes
from repro.errors import DefinitionError


class TestLookup:
    def test_basic_names(self):
        assert dtypes.dtype("float32") is dtypes.float32
        assert dtypes.dtype("int64") is dtypes.int64

    def test_aliases(self):
        assert dtypes.dtype("float") is dtypes.float32
        assert dtypes.dtype("double") is dtypes.float64
        assert dtypes.dtype("half") is dtypes.float16
        assert dtypes.dtype("int") is dtypes.int32

    def test_identity_passthrough(self):
        assert dtypes.dtype(dtypes.float32) is dtypes.float32

    def test_unknown_raises(self):
        with pytest.raises(DefinitionError, match="unknown data type"):
            dtypes.dtype("float128")

    def test_all_dtypes_registered(self):
        names = {t.name for t in dtypes.all_dtypes()}
        assert {"float32", "float64", "int32", "uint8", "bool"} <= names


class TestProperties:
    def test_bytes_and_bits(self):
        assert dtypes.float32.bytes == 4
        assert dtypes.float32.bits == 32
        assert dtypes.float64.bytes == 8
        assert dtypes.int16.bits == 16

    def test_numpy_equivalent(self):
        assert dtypes.float32.numpy == np.dtype(np.float32)
        assert dtypes.int64.numpy == np.dtype(np.int64)

    def test_kind_flags(self):
        assert dtypes.float32.is_float
        assert not dtypes.float32.is_integer
        assert dtypes.int32.is_integer
        assert not dtypes.int32.is_float
        assert dtypes.uint16.is_integer

    def test_str(self):
        assert str(dtypes.float32) == "float32"


class TestCTypes:
    def test_scalar_ctypes(self):
        assert dtypes.float32.ctype == "float"
        assert dtypes.float64.ctype == "double"
        assert dtypes.int32.ctype == "int"
        assert dtypes.uint8.ctype == "uchar"

    def test_vector_ctypes(self):
        assert dtypes.float32.vector_ctype(1) == "float"
        assert dtypes.float32.vector_ctype(4) == "float4"
        assert dtypes.float32.vector_ctype(16) == "float16"

    def test_invalid_vector_width(self):
        with pytest.raises(DefinitionError, match="vector width"):
            dtypes.float32.vector_ctype(3)


class TestPromotion:
    def test_same_type(self):
        assert dtypes.result_type(dtypes.float32, dtypes.float32) \
            is dtypes.float32

    def test_widening(self):
        assert dtypes.result_type(dtypes.float32, dtypes.float64) \
            is dtypes.float64
        assert dtypes.result_type(dtypes.int16, dtypes.int32) \
            is dtypes.int32
