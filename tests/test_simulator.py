"""Unit and integration tests for the cycle-level simulator."""

import numpy as np
import pytest

from repro.analysis import analyze_buffers
from repro.errors import DeadlockError, SimulationError
from repro.run import run_reference
from repro.simulator import (
    Channel,
    NetworkLink,
    SimulatorConfig,
    compile_stencil,
    simulate,
)
from repro.expr import parse
from util import (
    chain_program,
    diamond_program,
    edge_keys,
    lst1_inputs,
    lst1_program,
    random_inputs,
)


class TestChannel:
    def test_fifo_order(self):
        channel = Channel("c", 4)
        channel.push(1)
        channel.push(2)
        assert channel.pop() == 1
        assert channel.pop() == 2

    def test_full_and_empty(self):
        channel = Channel("c", 2)
        assert channel.empty
        channel.push(1)
        channel.push(2)
        assert channel.full
        with pytest.raises(SimulationError, match="full"):
            channel.push(3)
        channel.pop()
        channel.pop()
        with pytest.raises(SimulationError, match="empty"):
            channel.pop()

    def test_stats(self):
        channel = Channel("c", 4)
        for n in range(3):
            channel.push(n)
        channel.pop()
        assert channel.pushes == 3
        assert channel.pops == 1
        assert channel.max_occupancy == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            Channel("c", 0)


class TestNetworkLink:
    def test_latency(self):
        link = NetworkLink("l", 16, latency=5)
        link.step(0)
        link.push("x")
        for now in range(1, 5):
            link.step(now)
            assert link.empty
        link.step(5)
        assert not link.empty
        assert link.pop() == "x"

    def test_rate_limit(self):
        link = NetworkLink("l", 64, latency=0, words_per_cycle=0.5)
        link.step(0)
        for n in range(10):
            link.push(n)
        delivered = 0
        for now in range(1, 9):
            link.step(now)
            while not link.empty:
                link.pop()
                delivered += 1
        # 0.5 words/cycle over 8 cycles -> ~4 words.
        assert 3 <= delivered <= 5

    def test_backpressure_via_capacity(self):
        link = NetworkLink("l", 2, latency=10)
        link.push("a")
        link.push("b")
        assert link.full


class TestCompile:
    def test_simple(self):
        compiled = compile_stencil(parse("a[i] * 2 + b[i]"))
        assert len(compiled.accesses) == 2
        # accesses sorted by (field, offsets): a then b
        assert compiled([3.0, 4.0], (0,)) == 10.0

    def test_ternary(self):
        compiled = compile_stencil(parse("a[i] > 0 ? 1 : 2"))
        assert compiled([5.0], (0,)) == 1
        assert compiled([-5.0], (0,)) == 2

    def test_math(self):
        compiled = compile_stencil(parse("sqrt(a[i])"))
        assert compiled([9.0], (0,)) == 3.0

    def test_duplicate_accesses_deduplicated(self):
        compiled = compile_stencil(parse("a[i] * a[i]"))
        assert len(compiled.accesses) == 1
        assert compiled([3.0], (0,)) == 9.0

    def test_division_by_zero_is_ieee(self):
        compiled = compile_stencil(parse("a[i] / b[i]"))
        assert np.isinf(compiled([1.0, 0.0], (0,)))
        assert np.isnan(compiled([0.0, 0.0], (0,)))

    def test_index_use(self):
        compiled = compile_stencil(parse("a[i,j] * 0 + i * 10 + j"))
        assert compiled([1.0], (3, 4)) == 34


class TestFunctionalEquivalence:
    """Simulator output must match the reference executor exactly."""

    def test_lst1(self):
        program = lst1_program()
        inputs = lst1_inputs()
        reference = run_reference(program, inputs)["b4"]
        result = simulate(program, inputs)
        np.testing.assert_allclose(
            result.outputs["b4"][reference.valid_slice],
            reference.valid_view, rtol=1e-6)

    def test_lst1_vectorized(self):
        program = lst1_program().with_vectorization(4)
        inputs = lst1_inputs()
        reference = run_reference(lst1_program(), inputs)["b4"]
        result = simulate(program, inputs)
        np.testing.assert_allclose(
            result.outputs["b4"][reference.valid_slice],
            reference.valid_view, rtol=1e-6)

    def test_diamond(self):
        program = diamond_program()
        inputs = random_inputs(program)
        reference = run_reference(program, inputs)["join"]
        result = simulate(program, inputs)
        np.testing.assert_allclose(
            result.outputs["join"][reference.valid_slice],
            reference.valid_view, rtol=1e-6)

    def test_chain(self):
        program = chain_program(4)
        inputs = random_inputs(program)
        reference = run_reference(program, inputs)["s3"]
        result = simulate(program, inputs)
        np.testing.assert_allclose(result.outputs["s3"],
                                   reference.data, rtol=1e-6)

    def test_multi_output(self):
        from repro.core import StencilProgram
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
            "outputs": ["x", "y"],
            "shape": [6, 8],
            "program": {
                "x": {"code": "a[i,j] * 2", "boundary_condition": "shrink"},
                "y": {"code": "x[i,j] + 1", "boundary_condition": "shrink"},
            },
        })
        inputs = random_inputs(program)
        reference = run_reference(program, inputs)
        result = simulate(program, inputs)
        np.testing.assert_allclose(result.outputs["x"],
                                   reference["x"].data, rtol=1e-6)
        np.testing.assert_allclose(result.outputs["y"],
                                   reference["y"].data, rtol=1e-6)


class TestTiming:
    def test_cycles_close_to_model(self):
        program = lst1_program()
        result = simulate(program, lst1_inputs())
        assert result.cycles <= result.expected_cycles
        assert result.cycles >= program.num_cells
        assert result.model_accuracy > 0.8

    def test_continuous_streaming(self):
        result = simulate(lst1_program(), lst1_inputs())
        assert all(result.output_continuous.values())
        assert all(result.stencil_continuous.values())

    def test_vectorization_speedup(self):
        program = lst1_program()
        scalar = simulate(program, lst1_inputs())
        vector = simulate(program.with_vectorization(4), lst1_inputs())
        # Steady state shrinks by ~W; init shrinks too.
        assert vector.cycles < scalar.cycles / 2

    def test_sources_never_throttled_by_default(self):
        result = simulate(chain_program(3), random_inputs(chain_program(3)))
        assert result.cycles > 0


class TestDeadlock:
    def test_starved_channels_deadlock(self):
        program = diamond_program(long_branch=2)
        config = SimulatorConfig(
            channel_capacities={k: 2 for k in edge_keys(program)},
            deadlock_window=64)
        with pytest.raises(DeadlockError) as info:
            simulate(program, random_inputs(program), config)
        assert info.value.cycle > 0
        assert info.value.blocked_units

    def test_computed_buffers_no_deadlock(self):
        program = diamond_program(long_branch=2)
        result = simulate(program, random_inputs(program))
        assert all(result.output_continuous.values())

    def test_multitree_survives_small_channels(self):
        # Chains cannot deadlock even with minimal capacities.
        program = chain_program(3)
        config = SimulatorConfig(
            channel_capacities={k: 1 for k in edge_keys(program)},
            deadlock_window=64)
        result = simulate(program, random_inputs(program), config)
        assert result.cycles > 0

    def test_lst1_deadlocks_without_buffers(self):
        program = lst1_program(shape=(8, 8, 8))
        config = SimulatorConfig(
            channel_capacities={k: 4 for k in edge_keys(program)},
            deadlock_window=64)
        with pytest.raises(DeadlockError):
            simulate(program, lst1_inputs(), config)


class TestDistributed:
    def test_two_device_functional(self):
        program = lst1_program()
        inputs = lst1_inputs()
        reference = run_reference(program, inputs)["b4"]
        result = simulate(program, inputs, device_of={
            "b0": 0, "b1": 0, "b2": 0, "b3": 1, "b4": 1})
        np.testing.assert_allclose(
            result.outputs["b4"][reference.valid_slice],
            reference.valid_view, rtol=1e-6)

    def test_network_latency_costs_cycles(self):
        program = chain_program(4)
        inputs = random_inputs(program)
        local = simulate(program, inputs)
        remote = simulate(program, inputs,
                          device_of={"s0": 0, "s1": 0, "s2": 1, "s3": 1})
        assert remote.cycles > local.cycles

    def test_rate_limited_link_slows_stream(self):
        program = chain_program(2, shape=(4, 4, 8))
        inputs = random_inputs(program)
        slow = SimulatorConfig(network_words_per_cycle=0.25)
        fast = simulate(program, inputs, device_of={"s0": 0, "s1": 1})
        throttled = simulate(program, inputs, slow,
                             device_of={"s0": 0, "s1": 1})
        assert throttled.cycles > fast.cycles
