"""Pytest configuration: make test helpers importable and isolate the
persistent cross-process caches per test."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture(autouse=True)
def _isolated_repro_cache(tmp_path, monkeypatch):
    """Point REPRO_CACHE_DIR at a fresh directory for every test, so
    the explore result cache's default persistence cannot leak state
    between tests (or into the developer's real cache)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
