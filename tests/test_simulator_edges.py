"""Edge-case tests for the simulator and reference executor: 1D
programs, integer dtypes, scalar inputs, bandwidth-throttled sources."""

import numpy as np
import pytest

from repro.core import StencilProgram
from repro.run import run_reference
from repro.simulator import SimulatorConfig, simulate
from repro.simulator.units import SourceUnit
from repro.simulator.channel import Channel


class Test1DPrograms:
    def _program(self, code="a[i-1] + a[i+1]"):
        return StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i"]}},
            "outputs": ["s"],
            "shape": [32],
            "program": {"s": {"code": code,
                              "boundary_condition": "shrink"}},
        })

    def test_reference(self):
        program = self._program()
        a = np.arange(32, dtype=np.float32)
        result = run_reference(program, {"a": a})["s"]
        assert result.valid == ((1, 31),)
        np.testing.assert_allclose(result.valid_view, a[:-2] + a[2:])

    def test_simulator_matches(self):
        program = self._program()
        a = np.arange(32, dtype=np.float32)
        reference = run_reference(program, {"a": a})["s"]
        result = simulate(program, {"a": a})
        np.testing.assert_allclose(
            result.outputs["s"][reference.valid_slice],
            reference.valid_view)

    def test_1d_vectorized(self):
        program = self._program().with_vectorization(4)
        a = np.arange(32, dtype=np.float32)
        reference = run_reference(self._program(), {"a": a})["s"]
        result = simulate(program, {"a": a})
        np.testing.assert_allclose(
            result.outputs["s"][reference.valid_slice],
            reference.valid_view)


class TestIntegerPrograms:
    def test_int32_arithmetic(self):
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "int32", "dims": ["i", "j"]}},
            "outputs": ["s"],
            "shape": [8, 8],
            "program": {"s": {"code": "a[i,j] * 2 + 1",
                              "boundary_condition": "shrink"}},
        })
        a = np.arange(64, dtype=np.int32).reshape(8, 8)
        reference = run_reference(program, {"a": a})["s"]
        np.testing.assert_array_equal(reference.data, a * 2 + 1)
        result = simulate(program, {"a": a})
        np.testing.assert_array_equal(result.outputs["s"], a * 2 + 1)

    def test_shrink_fill_is_zero_for_ints(self):
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "int32", "dims": ["i"]}},
            "outputs": ["s"],
            "shape": [8],
            "program": {"s": {"code": "a[i-1] + a[i+1]",
                              "boundary_condition": "shrink"}},
        })
        a = np.ones(8, dtype=np.int32)
        reference = run_reference(program, {"a": a})["s"]
        assert reference.data[0] == 0


class TestScalarInputs:
    def test_scalar_through_simulator(self):
        program = StencilProgram.from_json({
            "inputs": {
                "a": {"dtype": "float32", "dims": ["i", "j"]},
                "c": {"dtype": "float32", "dims": []},
            },
            "outputs": ["s"],
            "shape": [4, 4],
            "program": {"s": {"code": "a[i,j] * c",
                              "boundary_condition": "shrink"}},
        })
        a = np.ones((4, 4), dtype=np.float32)
        result = simulate(program, {"a": a, "c": np.float32(2.5)})
        np.testing.assert_allclose(result.outputs["s"], 2.5)


class TestSourceThrottling:
    def test_rate_limited_source(self):
        channel = Channel("c", 64)
        data = np.arange(16, dtype=np.float32)
        source = SourceUnit("a", data, 1, [channel],
                            words_per_cycle=0.5)
        pushed = []
        for now in range(40):
            source.step(now)
            while not channel.empty:
                pushed.append(channel.pop())
            if source.done:
                break
        # 0.5 words/cycle: 16 words need ~32 cycles.
        assert source.done
        assert now >= 30
        # Words are W-tuples; flatten the single-lane stream.
        np.testing.assert_allclose([w[0] for w in pushed], data)

    def test_indivisible_width_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="not divisible"):
            SourceUnit("a", np.arange(10, dtype=np.float32), 4,
                       [Channel("c", 4)])


class TestCopyBoundarySimulated:
    def test_copy_matches_reference(self):
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
            "outputs": ["s"],
            "shape": [6, 6],
            "program": {"s": {"code": "a[i,j-1] + a[i,j+1]",
                              "boundary_condition": {
                                  "a": {"type": "copy"}}}},
        })
        rng = np.random.default_rng(3)
        a = rng.random((6, 6), dtype=np.float32)
        reference = run_reference(program, {"a": a})["s"]
        result = simulate(program, {"a": a})
        np.testing.assert_allclose(result.outputs["s"], reference.data,
                                   rtol=1e-6)

    def test_constant_matches_reference(self):
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
            "outputs": ["s"],
            "shape": [6, 6],
            "program": {"s": {"code": "a[i-1,j] + a[i+1,j]",
                              "boundary_condition": {
                                  "a": {"type": "constant",
                                        "value": 7.5}}}},
        })
        rng = np.random.default_rng(3)
        a = rng.random((6, 6), dtype=np.float32)
        reference = run_reference(program, {"a": a})["s"]
        result = simulate(program, {"a": a})
        np.testing.assert_allclose(result.outputs["s"], reference.data,
                                   rtol=1e-6)
