"""Unit tests for code generation: OpenCL, SMI, host, C reference."""

import pytest

from repro.analysis import analyze_buffers
from repro.codegen import (
    MIN_CHANNEL_DEPTH,
    assign_ports,
    generate_host,
    generate_opencl,
    generate_package,
    generate_reference_c,
    generate_smi_header,
    routing_table,
)
from repro.codegen.opencl import channel_name
from repro.distributed import partition_fixed
from repro.errors import CodeGenError
from repro.programs import chain, horizontal_diffusion
from util import lst1_program


class TestOpenCL:
    def test_channel_depths_match_analysis(self):
        program = lst1_program(shape=(16, 16, 16))
        analysis = analyze_buffers(program)
        source = generate_opencl(program, analysis)
        buffer = analysis.buffer_for_edge("stencil:b2", "stencil:b4",
                                          "b2")
        expected = buffer.size + MIN_CHANNEL_DEPTH
        name = channel_name("stencil:b2", "stencil:b4", "b2")
        assert f"{name} __attribute__((depth({expected})))" in source

    def test_kernel_per_stencil(self):
        source = generate_opencl(lst1_program())
        for name in ("b0", "b1", "b2", "b3", "b4"):
            assert f"__kernel void stencil_{name}()" in source

    def test_autorun_annotation(self):
        source = generate_opencl(lst1_program())
        assert source.count("__attribute__((autorun))") == 5

    def test_reader_writer_kernels(self):
        source = generate_opencl(lst1_program())
        assert "__kernel void read_a0" in source
        assert "__kernel void write_b4" in source

    def test_shift_register_phases(self):
        source = generate_opencl(lst1_program())
        assert "// -- shift phase --" in source
        assert "// -- update phase --" in source
        assert "// -- compute phase --" in source
        assert "#pragma unroll" in source

    def test_boundary_predication(self):
        # b3 reads b1 at i±1: guards on i appear in its kernel.
        source = generate_opencl(lst1_program(shape=(16, 16, 16)))
        assert "i >= 1" in source
        assert "i < 15" in source

    def test_constant_boundary_value(self):
        program = chain(1, shape=(8, 8, 8))
        source = generate_opencl(program)
        assert "0.0f" in source

    def test_vectorized_types(self):
        program = lst1_program().with_vectorization(4)
        source = generate_opencl(program)
        assert "float4" in source
        assert "for (int v = 0; v < 4; ++v)" in source

    def test_math_function_spelling(self):
        from repro.core import StencilProgram
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i"]}},
            "outputs": ["s"],
            "shape": [8],
            "program": {"s": {"code": "sqrt(max(a[i], 0.0))",
                              "boundary_condition": "shrink"}},
        })
        source = generate_opencl(program)
        assert "sqrt(fmax(" in source


class TestDistributedCodegen:
    def _partition(self):
        program = lst1_program()
        return program, partition_fixed(program, {
            "b0": 0, "b1": 0, "b2": 0, "b3": 1, "b4": 1})

    def test_device_filtering(self):
        program, partition = self._partition()
        dev0 = generate_opencl(program, partition=partition, device=0)
        dev1 = generate_opencl(program, partition=partition, device=1)
        assert "stencil_b0" in dev0 and "stencil_b0" not in dev1
        assert "stencil_b4" in dev1 and "stencil_b4" not in dev0

    def test_remote_streams_use_smi(self):
        program, partition = self._partition()
        dev0 = generate_opencl(program, partition=partition, device=0)
        assert "SMI_Push" in dev0
        assert '#include "smi.h"' in dev0

    def test_smi_header(self):
        _program, partition = self._partition()
        header = generate_smi_header(partition)
        assert "#define SMI_NUM_DEVICES 2" in header
        assert "SMI_PORT_B1" in header

    def test_smi_single_device_rejected(self):
        program = lst1_program()
        single = partition_fixed(program,
                                 {n: 0 for n in program.stencil_names})
        with pytest.raises(CodeGenError):
            generate_smi_header(single)

    def test_ports_deterministic(self):
        _program, partition = self._partition()
        ports = assign_ports(partition)
        assert [p.port for p in ports] == list(range(len(ports)))
        assert {p.data for p in ports} == {"b1", "b2"}

    def test_routing_linear_chain(self):
        program = chain(3, shape=(8, 8, 8))
        partition = partition_fixed(program,
                                    {"s0": 0, "s1": 1, "s2": 2})
        table = routing_table(partition)
        assert table[0][2] == 1
        assert table[2][0] == 1


class TestHostAndReference:
    def test_host_mentions_buffers(self):
        source = generate_host(lst1_program())
        assert "alloc_and_copy" in source
        assert "write_b4" in source

    def test_host_replication_note(self):
        program = lst1_program()
        partition = partition_fixed(program, {
            "b0": 0, "b1": 0, "b2": 1, "b3": 0, "b4": 1})
        source = generate_host(program, partition)
        assert "replicated to 2 devices" in source

    def test_reference_c_structure(self):
        source = generate_reference_c(lst1_program())
        assert "void lst1(" in source
        assert source.count("for (long") >= 15  # 5 stencils x 3 loops
        assert "malloc" in source and "free" in source

    def test_package_contents(self):
        files = generate_package(lst1_program())
        assert set(files) == {"lst1_device0.cl", "host.cpp",
                              "reference.c"}

    def test_package_distributed(self):
        program = lst1_program()
        partition = partition_fixed(program, {
            "b0": 0, "b1": 0, "b2": 0, "b3": 1, "b4": 1})
        files = generate_package(program, partition=partition)
        assert "smi.h" in files
        assert "lst1_device1.cl" in files

    def test_hdiff_generates(self):
        # The full application study program code-generates cleanly.
        files = generate_package(horizontal_diffusion(
            shape=(16, 16, 8), vectorization=8))
        kernel = files["horizontal_diffusion_device0.cl"]
        assert kernel.count("__attribute__((autorun))") == 24
        assert "float8" in kernel
