"""Unit tests for the batched engine's building blocks: the rate
limiter, the NumPy ring channels/links, array-mode stencil compilation,
and the array-slab units."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.expr import parse
from repro.simulator import (
    ArrayChannel,
    ArrayNetworkLink,
    BatchedSourceUnit,
    Channel,
    NetworkLink,
    RateLimiter,
    compile_stencil,
)


class TestRateLimiter:
    def test_unit_rate_admits_every_cycle(self):
        limiter = RateLimiter(1.0)
        for _ in range(5):
            limiter.refill()
            assert limiter.ready
            limiter.spend()

    def test_fractional_rate(self):
        limiter = RateLimiter(0.5)
        admitted = 0
        for _ in range(10):
            limiter.refill()
            if limiter.ready:
                limiter.spend()
                admitted += 1
        assert admitted == 5

    def test_credit_cap_allows_bursts(self):
        # rate 3 caps at 3 credits: up to three words in one cycle.
        limiter = RateLimiter(3.0)
        limiter.refill()
        burst = 0
        while limiter.ready:
            limiter.spend()
            burst += 1
        assert burst == 3

    def test_credit_cap_is_one_for_subunit_rates(self):
        # A 0.25 rate never accumulates more than one word of credit.
        limiter = RateLimiter(0.25)
        for _ in range(100):
            limiter.refill()
        assert limiter.credit == 1.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(SimulationError, match="positive"):
            RateLimiter(0.0)


def replay(channel, ops):
    """Apply a push/pop script, returning the observed behaviour."""
    seen = []
    for op, value in ops:
        if op == "push":
            if channel.full:
                seen.append(("full",))
            else:
                channel.push(value)
        else:
            if channel.empty:
                seen.append(("empty",))
            else:
                seen.append(("pop", tuple(np.ravel(channel.pop()))))
    return (seen, len(channel), channel.pushes, channel.pops,
            channel.max_occupancy)


class TestArrayChannel:
    def test_matches_channel_semantics(self):
        rng = np.random.default_rng(7)
        ops = []
        for n in range(200):
            kind = "push" if rng.random() < 0.55 else "pop"
            ops.append((kind, (float(n), float(-n))))
        scalar = Channel("c", 5)
        batched = ArrayChannel("c", 5, width=2, headroom=8)
        assert replay(scalar, ops) == replay(batched, ops)

    def test_slab_roundtrip_with_wraparound(self):
        channel = ArrayChannel("c", 8, width=1, headroom=0)
        total = []
        for base in range(0, 40, 4):
            rows = np.arange(base, base + 4, dtype=np.float64)
            channel.write_rows(rows.reshape(4, 1))
            total.extend(channel.read_rows(4).ravel().tolist())
        assert total == list(range(40))

    def test_record_batch_matches_scalar_replay(self):
        # B cycles of push+pop must leave the same statistics as the
        # scalar engine stepping the same pattern.
        for consumer_first in (False, True):
            for preload in (1, 3):
                scalar = Channel("c", 6)
                batched = ArrayChannel("c", 6, width=1, headroom=40)
                for n in range(preload):
                    scalar.push((float(n),))
                    batched.push((float(n),))
                cycles = 20
                for _ in range(cycles):
                    if consumer_first:
                        scalar.pop()
                        scalar.push((0.0,))
                    else:
                        scalar.push((0.0,))
                        scalar.pop()
                batched.record_batch(cycles, pushed=True, popped=True,
                                     consumer_first=consumer_first)
                batched.write_rows(np.zeros((cycles, 1)))
                batched.read_rows(cycles)
                assert len(batched) == len(scalar)
                assert batched.pushes == scalar.pushes
                assert batched.pops == scalar.pops
                assert batched.max_occupancy == scalar.max_occupancy

    def test_record_batch_growth_peak(self):
        scalar = Channel("c", 10)
        batched = ArrayChannel("c", 10, width=1, headroom=10)
        for _ in range(7):
            scalar.push((0.0,))
        batched.record_batch(7, pushed=True, popped=False,
                             consumer_first=False)
        batched.write_rows(np.zeros((7, 1)))
        assert batched.max_occupancy == scalar.max_occupancy == 7


class TestArrayNetworkLink:
    def test_matches_network_link(self):
        rng = np.random.default_rng(3)
        for rate in (1.0, 0.5):
            scalar = NetworkLink("l", 12, latency=4, words_per_cycle=rate)
            batched = ArrayNetworkLink("l", 12, width=1, latency=4,
                                       words_per_cycle=rate)
            log = []
            counter = 0
            for now in range(60):
                scalar.step(now)
                batched.step(now)
                if rng.random() < 0.6 and not scalar.full:
                    scalar.push((float(counter),))
                    batched.push((float(counter),))
                    counter += 1
                if rng.random() < 0.5 and not scalar.empty:
                    a = scalar.pop()
                    b = batched.pop()
                    log.append((a[0], float(b[0])))
                assert len(scalar) == len(batched)
                assert scalar.empty == batched.empty
                assert scalar.full == batched.full
            assert log and all(a == b for a, b in log)

    def test_timely_prefix(self):
        link = ArrayNetworkLink("l", 64, width=1, latency=2)
        link.step(0)
        link.push((1.0,))          # deliverable at cycle 2
        link.step(1)
        link.push((2.0,))          # deliverable at cycle 3
        assert link.timely_prefix(1) == 0
        assert link.timely_prefix(2) == 2   # times (2, 3) vs (2, 3)
        link.step(10)              # delivers one word (rate limit)
        link.push((3.0,))          # deliverable at 12: not timely at 10+1
        assert link.timely_prefix(10) == 1

    def test_deliver_rows(self):
        link = ArrayNetworkLink("l", 64, width=1, latency=1)
        link.write_rows(np.arange(3, dtype=np.float64).reshape(3, 1),
                        np.array([1, 2, 3]))
        assert link.in_flight_len == 3
        link.deliver_rows(2)
        assert link.in_flight_len == 1
        assert link.read_rows(2).ravel().tolist() == [0.0, 1.0]

    def test_sink_rejects_float_at_int64_edge(self):
        # float(int64 max) rounds up to 2**63: a float lane at exactly
        # 2**63 must still raise like the scalar per-element store.
        from repro.simulator.batched import BatchedSinkUnit
        channel = ArrayChannel("c", 8, width=1, headroom=4)
        channel.write_rows(np.array([[2.0 ** 63]]))
        sink = BatchedSinkUnit("o", channel, (1,), 1,
                               np.dtype(np.int64))
        with pytest.raises(OverflowError, match="out of bounds"):
            sink.run_batch(0, 1)

    def test_integer_slab_rows(self):
        # Integer streams ride int64 rows bit-exactly beyond 2**53.
        link = ArrayNetworkLink("l", 8, width=1, latency=0,
                                dtype=np.int64)
        link.step(0)
        link.push(((1 << 60) + 1,))
        link.step(1)
        assert int(link.pop()[0]) == (1 << 60) + 1


class TestCreditSchedule:
    """The closed-form credit schedule must reproduce the scalar
    limiter's cycle-by-cycle refill/spend behaviour exactly."""

    @pytest.mark.parametrize("rate", [0.25, 0.5, 0.75, 0.3, 0.1, 1.0,
                                      1.5, 3.0])
    def test_next_ready_in_matches_stepping(self, rate):
        link = ArrayNetworkLink("l", 256, width=1, latency=0,
                                words_per_cycle=rate)
        reference = RateLimiter(rate)
        for now in range(40):
            predicted = link.next_ready_in()
            # Step a scratch copy of the reference forward to find the
            # true next-ready cycle.
            credit = reference.credit
            actual = None
            for ahead in range(0, 200):
                credit_after = min(credit + rate, max(rate, 1.0))
                if credit_after >= 1.0:
                    actual = ahead
                    break
                credit = credit_after
            assert predicted == actual, (rate, now)
            # Advance both by one idle (non-delivering) cycle.  Credit
            # is only tracked below rate 1.0 (the refill saturates at
            # the cap every cycle above it, so the state is memoryless).
            link.advance_credit(1, delivered=False)
            reference.refill()
            if rate < 1.0:
                assert link._limiter.credit == reference.credit

    @pytest.mark.parametrize("rate", [0.25, 0.5, 0.3])
    def test_advance_credit_matches_scalar_delivery(self, rate):
        # A fractional delivery spends the credit to exactly 0.0; the
        # batched accounting must land on the same float state the
        # scalar step loop produces.
        scalar = NetworkLink("s", 64, latency=0, words_per_cycle=rate)
        batched = ArrayNetworkLink("b", 64, width=1, latency=0,
                                   words_per_cycle=rate)
        for n in range(10):
            scalar.push((float(n),))
            batched.push((float(n),))
        now = 0
        delivered = 0
        while delivered < 10 and now < 200:
            scalar.step(now)
            got = 0
            while not scalar.empty:
                scalar.pop()
                got += 1
            wait = batched.next_ready_in()
            if wait == 0:
                batched.deliver_rows(1)
                batched.read_rows(1)
                batched.advance_credit(1, delivered=True)
                assert got == 1
            else:
                batched.advance_credit(1, delivered=False)
                assert got == 0
            delivered += got
            assert scalar._limiter.credit == batched._limiter.credit
            now += 1
        assert delivered == 10

    def test_tiny_rate_returns_scan_bound(self):
        # A microscopic rate exceeds the exact-replay budget; the
        # schedule must return the conservative scan bound instead of
        # spinning (the planner re-plans after that many cycles).
        link = ArrayNetworkLink("l", 8, width=1, words_per_cycle=1e-18)
        assert link.next_ready_in() == link.CREDIT_SCAN_LIMIT
        link.advance_credit(link.CREDIT_SCAN_LIMIT, delivered=False)

    def test_fixpoint_rate_returns_none(self):
        # Once the refill hits its float64 fixpoint below 1.0 the link
        # can never become ready again.
        link = ArrayNetworkLink("l", 8, width=1, words_per_cycle=1e-18)
        link._limiter.credit = 1.0 - 1e-16  # one ulp short of the cap
        assert link.next_ready_in() is None

    def test_rate_at_least_one_is_memoryless(self):
        link = ArrayNetworkLink("l", 8, width=1, words_per_cycle=1.5)
        assert link.next_ready_in() == 0
        link.advance_credit(1000, delivered=False)
        assert link.next_ready_in() == 0


class TestCoordSlabs:
    def test_boundary_masks_match_bruteforce(self):
        from repro.core.fields import row_major_strides, unflatten_index
        from repro.simulator.batched import CoordSlabs
        domain = (4, 5, 3)
        slabs = CoordSlabs(domain)
        strides = row_major_strides(domain)
        for full in [(0, 0, 0), (1, 0, 0), (-1, 2, 0), (0, -1, 1)]:
            entry = slabs.boundary(full, width=1)
            n = 4 * 5 * 3
            expected = []
            for t in range(n):
                coords = unflatten_index(t, domain, strides)
                expected.append(all(
                    0 <= c + off < extent
                    for c, off, extent in zip(coords, full, domain)))
            if all(expected):
                assert entry is None
            else:
                in_bounds, words = entry
                assert in_bounds.tolist() == expected
                assert words.tolist() == sorted(
                    {t for t, ok in enumerate(expected) if not ok})

    def test_boundary_memoized(self):
        from repro.simulator.batched import CoordSlabs
        slabs = CoordSlabs((4, 4))
        first = slabs.boundary((1, 0), width=2)
        assert slabs.boundary((1, 0), width=2) is first


class TestArrayCompile:
    CASES = [
        "a[i,j] * 2 + b[i,j]",
        "a[i,j] / b[i,j]",
        "a[i,j] > 0 ? sqrt(b[i,j]) : b[i,j]",
        "min(a[i,j], b[i,j]) + max(a[i,j], 0.5)",
        "exp(a[i,j] * 700)",
        "log(a[i,j]) < 0 ? 1 : 2",
        "a[i,j] && b[i,j] ? i * 10 + j : -a[i,j]",
        "!(a[i,j] > b[i,j]) || a[i,j] == 0 ? fmod(a[i,j], b[i,j]) "
        ": floor(b[i,j])",
        "pow(a[i,j], b[i,j] * 400)",
        "sin(a[i,j]) * cos(b[i,j]) + tanh(a[i,j] * b[i,j])",
        "ceil(a[i,j]) - round(b[i,j]) + atan2(a[i,j], b[i,j])",
        "a[i,j] + log(1.947)",  # literal-only call arguments
        "atan2(ceil(a[i,j]), -1.0)",  # sign of ceil(-0.5)'s zero
        "atan2(floor(a[i,j]) * 0.0, -1.0) - b[i,j]",
        "atan2(-floor(a[i,j] * 0.1), -1.0)",  # negated int zero
        "atan2(floor(a[i,j] * 0.1) * -3, -1.0)",  # int zero * negative
        "atan2(-min(abs(a[i,j]), i), b[i,j])",  # mixed int/float min
        "atan2(b[i,j] > 0 ? -round(a[i,j] * 0.1) : -0.0, -1.0)",
        "fmod(a[i,j], 0.0 * a[i,j]) > 0.0 ? 1.0 : 2.0",  # inf % nan
    ]

    @staticmethod
    def _lanes():
        rng = np.random.default_rng(0)
        n = 64
        a = rng.standard_normal(n)
        b = rng.standard_normal(n)
        specials = [0.0, -0.0, np.nan, np.inf, -np.inf, 1.0, -1.0, 2.0]
        a[:len(specials)] = specials
        b[:len(specials)] = specials[::-1]
        i = rng.integers(0, 4, n)
        j = rng.integers(0, 4, n)
        return n, {"a": a, "b": b}, i, j

    @pytest.mark.parametrize("code", CASES)
    def test_bitwise_matches_cell_mode(self, code):
        dims = {"a": ("i", "j"), "b": ("i", "j")}
        ast = parse(code, dims, ("i", "j"))
        cell = compile_stencil(ast)
        array = compile_stencil(ast, mode="array")
        assert array.accesses == cell.accesses
        n, fields, i, j = self._lanes()
        reference = []
        for lane in range(n):
            args = [float(fields[acc.field][lane])
                    for acc in cell.accesses]
            try:
                value = cell(args, (int(i[lane]), int(j[lane])))
                if isinstance(value, complex):
                    value = math.nan
            except (ValueError, OverflowError, ZeroDivisionError):
                value = math.nan
            reference.append(value)
        got = array([fields[acc.field] for acc in array.accesses], (i, j))
        reference = np.asarray(reference, dtype=np.float64)
        assert np.array_equal(reference, got, equal_nan=True), code
        zeros = reference == 0
        assert np.array_equal(np.signbit(reference[zeros]),
                              np.signbit(got[zeros])), \
            f"{code}: zero signs differ"

    def test_lazy_ternary_does_not_poison(self):
        # cell mode never evaluates the unselected branch; a would-raise
        # call there must not poison the cell in array mode either.
        ast = parse("a[i] > 0 ? log(a[i]) : 1", {"a": ("i",)}, ("i",))
        array = compile_stencil(ast, mode="array")
        out = array([np.array([-3.0, math.e])], (np.array([0, 1]),))
        assert out[0] == 1.0
        assert out[1] == 1.0  # log(e)

    def test_selected_branch_error_poisons(self):
        ast = parse("a[i] < 0 ? log(a[i]) : 1", {"a": ("i",)}, ("i",))
        array = compile_stencil(ast, mode="array")
        out = array([np.array([-3.0, 2.0])], (np.array([0, 1]),))
        assert math.isnan(out[0])
        assert out[1] == 1.0

    def test_unknown_mode_rejected(self):
        from repro.errors import CodeGenError
        ast = parse("a[i]", {"a": ("i",)}, ("i",))
        with pytest.raises(CodeGenError, match="mode"):
            compile_stencil(ast, mode="quantum")


class TestBatchedSourceUnit:
    def test_slabs_match_lazy_tuple_stream(self):
        data = np.arange(24, dtype=np.float32).reshape(6, 4)
        channel = ArrayChannel("c", 64, width=2, headroom=16)
        source = BatchedSourceUnit("a", data, 2, [channel])
        assert source.num_words == 12
        source.run_batch(0, 5)
        source.run_batch(5, 7)
        assert source.done
        slab = channel.read_rows(12)
        np.testing.assert_array_equal(
            slab.ravel(), np.arange(24, dtype=np.float64))

    def test_scalar_step_parity(self):
        from repro.simulator import SourceUnit
        data = np.arange(8, dtype=np.float32)
        scalar_channel = Channel("c", 16)
        array_channel = ArrayChannel("c", 16, width=1, headroom=4)
        scalar = SourceUnit("a", data, 1, [scalar_channel])
        batched = BatchedSourceUnit("a", data, 1, [array_channel])
        for now in range(8):
            assert scalar.step(now) == batched.step(now)
        assert scalar.done and batched.done
        assert scalar_channel.max_occupancy == array_channel.max_occupancy
        scalar_words = [scalar_channel.pop() for _ in range(8)]
        batched_words = array_channel.read_rows(8)
        np.testing.assert_array_equal(
            np.asarray(scalar_words, dtype=np.float64),
            batched_words)
