"""Unit tests for the batched engine's building blocks: the rate
limiter, the NumPy ring channels/links, array-mode stencil compilation,
and the array-slab units."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.expr import parse
from repro.simulator import (
    ArrayChannel,
    ArrayNetworkLink,
    BatchedSourceUnit,
    Channel,
    NetworkLink,
    RateLimiter,
    compile_stencil,
)


class TestRateLimiter:
    def test_unit_rate_admits_every_cycle(self):
        limiter = RateLimiter(1.0)
        for _ in range(5):
            limiter.refill()
            assert limiter.ready
            limiter.spend()

    def test_fractional_rate(self):
        limiter = RateLimiter(0.5)
        admitted = 0
        for _ in range(10):
            limiter.refill()
            if limiter.ready:
                limiter.spend()
                admitted += 1
        assert admitted == 5

    def test_credit_cap_allows_bursts(self):
        # rate 3 caps at 3 credits: up to three words in one cycle.
        limiter = RateLimiter(3.0)
        limiter.refill()
        burst = 0
        while limiter.ready:
            limiter.spend()
            burst += 1
        assert burst == 3

    def test_credit_cap_is_one_for_subunit_rates(self):
        # A 0.25 rate never accumulates more than one word of credit.
        limiter = RateLimiter(0.25)
        for _ in range(100):
            limiter.refill()
        assert limiter.credit == 1.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(SimulationError, match="positive"):
            RateLimiter(0.0)


def replay(channel, ops):
    """Apply a push/pop script, returning the observed behaviour."""
    seen = []
    for op, value in ops:
        if op == "push":
            if channel.full:
                seen.append(("full",))
            else:
                channel.push(value)
        else:
            if channel.empty:
                seen.append(("empty",))
            else:
                seen.append(("pop", tuple(np.ravel(channel.pop()))))
    return (seen, len(channel), channel.pushes, channel.pops,
            channel.max_occupancy)


class TestArrayChannel:
    def test_matches_channel_semantics(self):
        rng = np.random.default_rng(7)
        ops = []
        for n in range(200):
            kind = "push" if rng.random() < 0.55 else "pop"
            ops.append((kind, (float(n), float(-n))))
        scalar = Channel("c", 5)
        batched = ArrayChannel("c", 5, width=2, headroom=8)
        assert replay(scalar, ops) == replay(batched, ops)

    def test_slab_roundtrip_with_wraparound(self):
        channel = ArrayChannel("c", 8, width=1, headroom=0)
        total = []
        for base in range(0, 40, 4):
            rows = np.arange(base, base + 4, dtype=np.float64)
            channel.write_rows(rows.reshape(4, 1))
            total.extend(channel.read_rows(4).ravel().tolist())
        assert total == list(range(40))

    def test_record_batch_matches_scalar_replay(self):
        # B cycles of push+pop must leave the same statistics as the
        # scalar engine stepping the same pattern.
        for consumer_first in (False, True):
            for preload in (1, 3):
                scalar = Channel("c", 6)
                batched = ArrayChannel("c", 6, width=1, headroom=40)
                for n in range(preload):
                    scalar.push((float(n),))
                    batched.push((float(n),))
                cycles = 20
                for _ in range(cycles):
                    if consumer_first:
                        scalar.pop()
                        scalar.push((0.0,))
                    else:
                        scalar.push((0.0,))
                        scalar.pop()
                batched.record_batch(cycles, pushed=True, popped=True,
                                     consumer_first=consumer_first)
                batched.write_rows(np.zeros((cycles, 1)))
                batched.read_rows(cycles)
                assert len(batched) == len(scalar)
                assert batched.pushes == scalar.pushes
                assert batched.pops == scalar.pops
                assert batched.max_occupancy == scalar.max_occupancy

    def test_record_batch_growth_peak(self):
        scalar = Channel("c", 10)
        batched = ArrayChannel("c", 10, width=1, headroom=10)
        for _ in range(7):
            scalar.push((0.0,))
        batched.record_batch(7, pushed=True, popped=False,
                             consumer_first=False)
        batched.write_rows(np.zeros((7, 1)))
        assert batched.max_occupancy == scalar.max_occupancy == 7


class TestArrayNetworkLink:
    def test_matches_network_link(self):
        rng = np.random.default_rng(3)
        for rate in (1.0, 0.5):
            scalar = NetworkLink("l", 12, latency=4, words_per_cycle=rate)
            batched = ArrayNetworkLink("l", 12, width=1, latency=4,
                                       words_per_cycle=rate)
            log = []
            counter = 0
            for now in range(60):
                scalar.step(now)
                batched.step(now)
                if rng.random() < 0.6 and not scalar.full:
                    scalar.push((float(counter),))
                    batched.push((float(counter),))
                    counter += 1
                if rng.random() < 0.5 and not scalar.empty:
                    a = scalar.pop()
                    b = batched.pop()
                    log.append((a[0], float(b[0])))
                assert len(scalar) == len(batched)
                assert scalar.empty == batched.empty
                assert scalar.full == batched.full
            assert log and all(a == b for a, b in log)

    def test_timely_prefix(self):
        link = ArrayNetworkLink("l", 64, width=1, latency=2)
        link.step(0)
        link.push((1.0,))          # deliverable at cycle 2
        link.step(1)
        link.push((2.0,))          # deliverable at cycle 3
        assert link.timely_prefix(1) == 0
        assert link.timely_prefix(2) == 2   # times (2, 3) vs (2, 3)
        link.step(10)              # delivers one word (rate limit)
        link.push((3.0,))          # deliverable at 12: not timely at 10+1
        assert link.timely_prefix(10) == 1

    def test_deliver_rows(self):
        link = ArrayNetworkLink("l", 64, width=1, latency=1)
        link.write_rows(np.arange(3, dtype=np.float64).reshape(3, 1),
                        np.array([1, 2, 3]))
        assert link.in_flight_len == 3
        link.deliver_rows(2)
        assert link.in_flight_len == 1
        assert link.read_rows(2).ravel().tolist() == [0.0, 1.0]

    def test_sink_rejects_float_at_int64_edge(self):
        # float(int64 max) rounds up to 2**63: a float lane at exactly
        # 2**63 must still raise like the scalar per-element store.
        from repro.simulator.batched import BatchedSinkUnit
        channel = ArrayChannel("c", 8, width=1, headroom=4)
        channel.write_rows(np.array([[2.0 ** 63]]))
        sink = BatchedSinkUnit("o", channel, (1,), 1,
                               np.dtype(np.int64))
        with pytest.raises(OverflowError, match="out of bounds"):
            sink.run_batch(0, 1)

    def test_integer_slab_rows(self):
        # Integer streams ride int64 rows bit-exactly beyond 2**53.
        link = ArrayNetworkLink("l", 8, width=1, latency=0,
                                dtype=np.int64)
        link.step(0)
        link.push(((1 << 60) + 1,))
        link.step(1)
        assert int(link.pop()[0]) == (1 << 60) + 1


class TestCreditSchedule:
    """The closed-form credit schedule must reproduce the scalar
    limiter's cycle-by-cycle refill/spend behaviour exactly."""

    @pytest.mark.parametrize("rate", [0.25, 0.5, 0.75, 0.3, 0.1, 1.0,
                                      1.5, 3.0])
    def test_next_ready_in_matches_stepping(self, rate):
        link = ArrayNetworkLink("l", 256, width=1, latency=0,
                                words_per_cycle=rate)
        reference = RateLimiter(rate)
        for now in range(40):
            predicted = link.next_ready_in()
            # Step a scratch copy of the reference forward to find the
            # true next-ready cycle.
            credit = reference.credit
            actual = None
            for ahead in range(0, 200):
                credit_after = min(credit + rate, max(rate, 1.0))
                if credit_after >= 1.0:
                    actual = ahead
                    break
                credit = credit_after
            assert predicted == actual, (rate, now)
            # Advance both by one idle (non-delivering) cycle.  Credit
            # is only tracked below rate 1.0 (the refill saturates at
            # the cap every cycle above it, so the state is memoryless).
            link.advance_credit(1, delivered=False)
            reference.refill()
            if rate < 1.0:
                assert link._limiter.credit == reference.credit

    @pytest.mark.parametrize("rate", [0.25, 0.5, 0.3])
    def test_advance_credit_matches_scalar_delivery(self, rate):
        # A fractional delivery spends the credit to exactly 0.0; the
        # batched accounting must land on the same float state the
        # scalar step loop produces.
        scalar = NetworkLink("s", 64, latency=0, words_per_cycle=rate)
        batched = ArrayNetworkLink("b", 64, width=1, latency=0,
                                   words_per_cycle=rate)
        for n in range(10):
            scalar.push((float(n),))
            batched.push((float(n),))
        now = 0
        delivered = 0
        while delivered < 10 and now < 200:
            scalar.step(now)
            got = 0
            while not scalar.empty:
                scalar.pop()
                got += 1
            wait = batched.next_ready_in()
            if wait == 0:
                batched.deliver_rows(1)
                batched.read_rows(1)
                batched.advance_credit(1, delivered=True)
                assert got == 1
            else:
                batched.advance_credit(1, delivered=False)
                assert got == 0
            delivered += got
            assert scalar._limiter.credit == batched._limiter.credit
            now += 1
        assert delivered == 10

    def test_tiny_rate_returns_scan_bound(self):
        # A microscopic rate exceeds the exact-replay budget; the
        # schedule must return the conservative scan bound instead of
        # spinning (the planner re-plans after that many cycles).
        link = ArrayNetworkLink("l", 8, width=1, words_per_cycle=1e-18)
        assert link.next_ready_in() == link.CREDIT_SCAN_LIMIT
        link.advance_credit(link.CREDIT_SCAN_LIMIT, delivered=False)

    def test_fixpoint_rate_returns_none(self):
        # Once the refill hits its float64 fixpoint below 1.0 the link
        # can never become ready again.
        link = ArrayNetworkLink("l", 8, width=1, words_per_cycle=1e-18)
        link._limiter.credit = 1.0 - 1e-16  # one ulp short of the cap
        assert link.next_ready_in() is None

    def test_rate_at_least_one_is_memoryless(self):
        link = ArrayNetworkLink("l", 8, width=1, words_per_cycle=1.5)
        assert link.next_ready_in() == 0
        link.advance_credit(1000, delivered=False)
        assert link.next_ready_in() == 0

    @pytest.mark.parametrize("rate,period", [
        (0.5, 2), (0.25, 4), (0.75, 2), (0.2, 5),
        # Irreducible p/q with p > 1: ceil(q/p) refills reach the cap.
        (1.0 / 3.0, 3), (3.0 / 7.0, 3), (5.0 / 8.0, 2), (7.0 / 16.0, 3),
        # Float64 quirk shared with the scalar engine: 1/7's seventh
        # partial sum rounds just below 1.0, costing an extra refill.
        (1.0 / 7.0, 8),
        (1.0, 1), (1.5, 1), (3.0, 1),
    ])
    def test_delivery_period(self, rate, period):
        assert RateLimiter(rate).delivery_period() == period
        link = ArrayNetworkLink("l", 8, width=1, words_per_cycle=rate)
        assert link.delivery_period() == period

    @pytest.mark.parametrize("rate", [0.25, 1.0 / 3.0, 3.0 / 7.0,
                                      5.0 / 8.0, 2.0 / 3.0, 5.0 / 9.0,
                                      7.0 / 16.0, 0.9])
    def test_delivery_mask_pins_scalar_limiter(self, rate):
        # A saturated link delivers on a strictly periodic per-cycle
        # mask (credit restarts from exactly 0.0 after every spend).
        # Pin the closed-form schedule — period, phase, and the
        # next_ready_in countdown — against the scalar limiter stepping
        # cycle by cycle, for irreducible p/q rates with p > 1.
        scalar = NetworkLink("s", 512, latency=0, words_per_cycle=rate)
        batched = ArrayNetworkLink("b", 512, width=1, latency=0,
                                   words_per_cycle=rate)
        for n in range(200):
            scalar.push((float(n),))
            batched.push((float(n),))
        period = batched.delivery_period()
        assert period is not None
        mask = []
        for now in range(120):
            wait = batched.next_ready_in()
            before = len(scalar._ready)
            scalar.step(now)
            delivered = len(scalar._ready) - before
            assert delivered in (0, 1)
            assert (wait == 0) == bool(delivered), (rate, now)
            mask.append(delivered)
            batched.advance_credit(1, delivered=bool(delivered))
            if delivered:
                batched.deliver_rows(1)
                batched.read_rows(1)
            assert scalar._limiter.credit == batched._limiter.credit
        # The mask is exactly one delivery every `period` cycles, the
        # first after a full refill run-up from zero credit.
        expected = [1 if (now + 1) % period == 0 else 0
                    for now in range(120)]
        assert mask == expected
        assert sum(mask) == 120 // period

    def test_credit_schedule_cached_and_exact(self):
        limiter = RateLimiter(3.0 / 7.0)
        schedule = limiter.credit_schedule()
        assert schedule is not None and schedule[-1] == 1.0
        assert RateLimiter(3.0 / 7.0).credit_schedule() is schedule
        # Entries replay the refill iterate bitwise.
        replay = RateLimiter(3.0 / 7.0)
        for credit in schedule:
            replay.refill()
            assert replay.credit == credit
        assert RateLimiter(2.5).credit_schedule() is None


class TestCoordSlabs:
    def test_boundary_masks_match_bruteforce(self):
        from repro.core.fields import row_major_strides, unflatten_index
        from repro.simulator.batched import CoordSlabs
        domain = (4, 5, 3)
        slabs = CoordSlabs(domain)
        strides = row_major_strides(domain)
        for full in [(0, 0, 0), (1, 0, 0), (-1, 2, 0), (0, -1, 1)]:
            entry = slabs.boundary(full, width=1)
            n = 4 * 5 * 3
            expected = []
            for t in range(n):
                coords = unflatten_index(t, domain, strides)
                expected.append(all(
                    0 <= c + off < extent
                    for c, off, extent in zip(coords, full, domain)))
            if all(expected):
                assert entry is None
            else:
                in_bounds, words = entry
                assert in_bounds.tolist() == expected
                assert words.tolist() == sorted(
                    {t for t, ok in enumerate(expected) if not ok})

    def test_boundary_memoized(self):
        from repro.simulator.batched import CoordSlabs
        slabs = CoordSlabs((4, 4))
        first = slabs.boundary((1, 0), width=2)
        assert slabs.boundary((1, 0), width=2) is first


class TestArrayCompile:
    CASES = [
        "a[i,j] * 2 + b[i,j]",
        "a[i,j] / b[i,j]",
        "a[i,j] > 0 ? sqrt(b[i,j]) : b[i,j]",
        "min(a[i,j], b[i,j]) + max(a[i,j], 0.5)",
        "exp(a[i,j] * 700)",
        "log(a[i,j]) < 0 ? 1 : 2",
        "a[i,j] && b[i,j] ? i * 10 + j : -a[i,j]",
        "!(a[i,j] > b[i,j]) || a[i,j] == 0 ? fmod(a[i,j], b[i,j]) "
        ": floor(b[i,j])",
        "pow(a[i,j], b[i,j] * 400)",
        "sin(a[i,j]) * cos(b[i,j]) + tanh(a[i,j] * b[i,j])",
        "ceil(a[i,j]) - round(b[i,j]) + atan2(a[i,j], b[i,j])",
        "a[i,j] + log(1.947)",  # literal-only call arguments
        "atan2(ceil(a[i,j]), -1.0)",  # sign of ceil(-0.5)'s zero
        "atan2(floor(a[i,j]) * 0.0, -1.0) - b[i,j]",
        "atan2(-floor(a[i,j] * 0.1), -1.0)",  # negated int zero
        "atan2(floor(a[i,j] * 0.1) * -3, -1.0)",  # int zero * negative
        "atan2(-min(abs(a[i,j]), i), b[i,j])",  # mixed int/float min
        "atan2(b[i,j] > 0 ? -round(a[i,j] * 0.1) : -0.0, -1.0)",
        "fmod(a[i,j], 0.0 * a[i,j]) > 0.0 ? 1.0 : 2.0",  # inf % nan
    ]

    @staticmethod
    def _lanes():
        rng = np.random.default_rng(0)
        n = 64
        a = rng.standard_normal(n)
        b = rng.standard_normal(n)
        specials = [0.0, -0.0, np.nan, np.inf, -np.inf, 1.0, -1.0, 2.0]
        a[:len(specials)] = specials
        b[:len(specials)] = specials[::-1]
        i = rng.integers(0, 4, n)
        j = rng.integers(0, 4, n)
        return n, {"a": a, "b": b}, i, j

    @pytest.mark.parametrize("code", CASES)
    def test_bitwise_matches_cell_mode(self, code):
        dims = {"a": ("i", "j"), "b": ("i", "j")}
        ast = parse(code, dims, ("i", "j"))
        cell = compile_stencil(ast)
        array = compile_stencil(ast, mode="array")
        assert array.accesses == cell.accesses
        n, fields, i, j = self._lanes()
        reference = []
        for lane in range(n):
            args = [float(fields[acc.field][lane])
                    for acc in cell.accesses]
            try:
                value = cell(args, (int(i[lane]), int(j[lane])))
                if isinstance(value, complex):
                    value = math.nan
            except (ValueError, OverflowError, ZeroDivisionError):
                value = math.nan
            reference.append(value)
        got = array([fields[acc.field] for acc in array.accesses], (i, j))
        reference = np.asarray(reference, dtype=np.float64)
        assert np.array_equal(reference, got, equal_nan=True), code
        zeros = reference == 0
        assert np.array_equal(np.signbit(reference[zeros]),
                              np.signbit(got[zeros])), \
            f"{code}: zero signs differ"

    def test_lazy_ternary_does_not_poison(self):
        # cell mode never evaluates the unselected branch; a would-raise
        # call there must not poison the cell in array mode either.
        ast = parse("a[i] > 0 ? log(a[i]) : 1", {"a": ("i",)}, ("i",))
        array = compile_stencil(ast, mode="array")
        out = array([np.array([-3.0, math.e])], (np.array([0, 1]),))
        assert out[0] == 1.0
        assert out[1] == 1.0  # log(e)

    def test_selected_branch_error_poisons(self):
        ast = parse("a[i] < 0 ? log(a[i]) : 1", {"a": ("i",)}, ("i",))
        array = compile_stencil(ast, mode="array")
        out = array([np.array([-3.0, 2.0])], (np.array([0, 1]),))
        assert math.isnan(out[0])
        assert out[1] == 1.0

    def test_unknown_mode_rejected(self):
        from repro.errors import CodeGenError
        ast = parse("a[i]", {"a": ("i",)}, ("i",))
        with pytest.raises(CodeGenError, match="mode"):
            compile_stencil(ast, mode="quantum")


class TestSuperPattern:
    """End-to-end behaviour of the multi-cycle super-pattern planner on
    fractional-rate links: steady state executes as repeating windows
    with no per-delivery re-planning and no scalar fallback."""

    RATE = 1.0 / 3.0

    @staticmethod
    def _build(shape, rate, **kwargs):
        from repro.distributed import contiguous_device_split
        from repro.programs import horizontal_diffusion
        from repro.simulator import SimulatorConfig, build_simulator

        program = horizontal_diffusion(shape=shape, vectorization=4)
        rng = np.random.default_rng(0)
        inputs = {
            name: rng.random(
                spec.shape(program.shape, program.index_names)
            ).astype(spec.dtype.numpy)
            for name, spec in program.inputs.items()}
        config = SimulatorConfig(engine_mode="batched",
                                 network_words_per_cycle=rate,
                                 network_latency=8, **kwargs)
        simulator = build_simulator(
            program, config, contiguous_device_split(program, 2))
        return simulator, inputs

    def test_zero_per_delivery_replans(self):
        # The plan count must not scale with the word count: steady
        # state is covered by super-pattern windows, so only the fill
        # and drain transients plan at all.  (Per-delivery re-planning
        # would cost ~2 plans per delivered word — thousands here.)
        counts = {}
        for shape in ((16, 16, 8), (16, 16, 32)):
            simulator, inputs = self._build(shape, self.RATE)
            result = simulator.run(inputs)
            words = simulator.program.num_cells // 4
            assert simulator.plan_count < 64, shape
            assert simulator.plan_count < words // 8, shape
            assert simulator.scalar_cycles == 0, shape
            assert simulator.window_cycles >= 0.9 * result.cycles, shape
            counts[shape] = simulator.plan_count
        # 4x the words must not grow the plan count.
        assert counts[(16, 16, 32)] <= counts[(16, 16, 8)] + 8

    def test_superpattern_off_is_identical_but_replans(self):
        simulator, inputs = self._build((16, 16, 8), self.RATE)
        fast = simulator.run(inputs)
        slow_sim, _ = self._build((16, 16, 8), self.RATE,
                                  superpattern=False)
        slow = slow_sim.run(inputs)
        assert slow_sim.window_count == 0
        assert slow_sim.plan_count > 10 * simulator.plan_count
        assert fast.cycles == slow.cycles
        assert fast.stall_cycles == slow.stall_cycles
        assert fast.channel_occupancy == slow.channel_occupancy
        for name in fast.outputs:
            np.testing.assert_array_equal(fast.outputs[name],
                                          slow.outputs[name])

    def test_integer_rate_has_no_window(self):
        # Rate 1.0 links already batch maximally on single-cycle
        # patterns; the super-pattern planner must stay out of the way.
        simulator, inputs = self._build((16, 16, 8), 1.0)
        simulator.run(inputs)
        assert simulator.window_count == 0

    def test_mixed_rate_windows(self):
        # Two links with different sub-unit rates: the window is the
        # LCM of both delivery periods and still covers steady state.
        from repro.simulator import SimulatorConfig, build_simulator
        from repro.core import StencilProgram

        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float64", "dims": ["i"]}},
            "outputs": ["t"],
            "shape": [512],
            "program": {
                "s": {"code": "a[i-1] + a[i]",
                      "boundary_condition": {
                          "a": {"type": "constant", "value": 1.0}}},
                "t": {"code": "s[i] * 0.5",
                      "boundary_condition": {
                          "s": {"type": "constant", "value": 0.0}}},
            },
        })
        device_of = {"s": 0, "t": 1}
        keys = [("input:a", "stencil:s", "a"),
                ("stencil:s", "stencil:t", "s")]
        config = SimulatorConfig(
            engine_mode="batched", network_latency=4,
            network_link_rates={keys[1]: 0.5},
            network_words_per_cycle=1.0)
        # Only the cut edge is a link; give it rate 0.5.
        simulator = build_simulator(program, config, device_of)
        inputs = {"a": np.arange(512, dtype=np.float64)}
        result = simulator.run(inputs)
        assert simulator.window_count > 0
        assert simulator.scalar_cycles == 0
        assert result.cycles > 2 * 512  # the 0.5-rate link dominates


class TestBatchedSourceUnit:
    def test_slabs_match_lazy_tuple_stream(self):
        data = np.arange(24, dtype=np.float32).reshape(6, 4)
        channel = ArrayChannel("c", 64, width=2, headroom=16)
        source = BatchedSourceUnit("a", data, 2, [channel])
        assert source.num_words == 12
        source.run_batch(0, 5)
        source.run_batch(5, 7)
        assert source.done
        slab = channel.read_rows(12)
        np.testing.assert_array_equal(
            slab.ravel(), np.arange(24, dtype=np.float64))

    def test_scalar_step_parity(self):
        from repro.simulator import SourceUnit
        data = np.arange(8, dtype=np.float32)
        scalar_channel = Channel("c", 16)
        array_channel = ArrayChannel("c", 16, width=1, headroom=4)
        scalar = SourceUnit("a", data, 1, [scalar_channel])
        batched = BatchedSourceUnit("a", data, 1, [array_channel])
        for now in range(8):
            assert scalar.step(now) == batched.step(now)
        assert scalar.done and batched.done
        assert scalar_channel.max_occupancy == array_channel.max_occupancy
        scalar_words = [scalar_channel.pop() for _ in range(8)]
        batched_words = array_channel.read_rows(8)
        np.testing.assert_array_equal(
            np.asarray(scalar_words, dtype=np.float64),
            batched_words)
