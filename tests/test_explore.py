"""Tests for the design-space exploration subsystem."""

import numpy as np
import pytest

from repro.errors import DefinitionError
from repro.explore import (
    ConfigPoint,
    ConfigSpace,
    ExhaustiveSearch,
    ExplorationReport,
    GreedySearch,
    Pruner,
    ResultCache,
    baseline_point,
    explore,
    get_strategy,
    program_fingerprint,
)
from repro.programs import build, chain, horizontal_diffusion, laplace2d
from repro.run import Session


def small_chain():
    return chain(4, shape=(8, 8, 8))


class TestConfigSpace:
    def test_product_size_and_determinism(self):
        space = ConfigSpace(vectorizations=(1, 2),
                            device_counts=(1, 2),
                            partitions=("contiguous", "auto"))
        assert space.size == 8
        assert space.points() == space.points()
        assert len(set(space.points())) == 8

    def test_default_space_tracks_innermost_extent(self):
        space = ConfigSpace.default_for(laplace2d(shape=(24, 24)))
        assert all(w <= 24 for w in space.vectorizations)
        # One stencil: no multi-device axis, no 'auto' strategy.
        assert space.device_counts == (1,)
        assert space.partitions == ("contiguous",)

    def test_default_space_multi_device(self):
        space = ConfigSpace.default_for(small_chain())
        assert space.device_counts == (1, 2, 4)
        assert set(space.partitions) == {"contiguous", "auto"}

    def test_point_validation(self):
        with pytest.raises(DefinitionError, match="partition"):
            ConfigPoint(partition="scatter")
        with pytest.raises(DefinitionError, match="vectorization"):
            ConfigPoint(vectorization=0)

    def test_point_json_round_trip(self):
        point = ConfigPoint(vectorization=4, devices=2,
                            partition="auto",
                            network_words_per_cycle=0.5,
                            network_latency=16, min_channel_depth=12)
        assert ConfigPoint.from_json(point.to_json()) == point

    def test_space_json_round_trip(self):
        space = ConfigSpace.default_for(small_chain())
        assert ConfigSpace.from_json(space.to_json()) == space


class TestPruning:
    def test_nondividing_width_is_pruned(self):
        pruner = Pruner(small_chain())
        verdict = pruner.predict(ConfigPoint(vectorization=3))
        assert not verdict.feasible
        assert "does not divide" in verdict.reason

    def test_network_bound_point_is_pruned(self):
        # W = 8 across a contiguous 2-device cut needs more operands
        # per cycle than the platform's chained links provide.
        pruner = Pruner(chain(6, shape=(16, 8, 8)))
        verdict = pruner.predict(ConfigPoint(vectorization=8,
                                             devices=2))
        assert not verdict.feasible
        assert "network-bound" in verdict.reason

    def test_single_device_prediction_is_eq1(self):
        program = small_chain()
        pruner = Pruner(program)
        verdict = pruner.predict(ConfigPoint(vectorization=2))
        analysis = pruner.analysis_at(2)
        assert verdict.feasible
        assert verdict.predicted_cycles == \
            analysis.pipeline_latency + program.num_cells // 2

    def test_auto_placement_uses_fewer_devices_when_it_fits(self):
        pruner = Pruner(small_chain())
        verdict = pruner.predict(ConfigPoint(devices=4,
                                             partition="auto"))
        assert verdict.feasible
        assert verdict.devices_used == 1
        assert verdict.device_of is None

    def test_duplicate_machines_share_simulation_key(self):
        pruner = Pruner(small_chain())
        auto = pruner.predict(ConfigPoint(devices=4, partition="auto"))
        single = pruner.predict(ConfigPoint())
        assert auto.simulation_key == single.simulation_key

    def test_network_latency_prices_delay_buffers(self):
        # Cut edges on a reconvergent program stretch the delay
        # buffers that re-balance the parallel paths; those FIFOs cost
        # real M20K on the device holding them, so an absurd wire
        # latency must overflow the device — not pass silently.
        pruner = Pruner(horizontal_diffusion(shape=(16, 16, 8)))
        verdict = pruner.predict(
            ConfigPoint(devices=2, network_latency=2_000_000))
        assert not verdict.feasible
        assert "overflows" in verdict.reason


class TestStrategies:
    def _predictions(self):
        pruner = Pruner(small_chain())
        space = ConfigSpace(vectorizations=(1, 2, 3, 4, 8))
        return [pruner.predict(p) for p in space.points()]

    def test_exhaustive_selects_all_feasible(self):
        predictions = self._predictions()
        selected = ExhaustiveSearch().select(predictions)
        feasible = [p.point for p in predictions if p.feasible]
        assert sorted(p.key() for p in selected) == \
            sorted(p.key() for p in feasible)

    def test_greedy_respects_beam_and_keeps_baseline(self):
        predictions = self._predictions()
        base = ConfigPoint(vectorization=1)
        selected = GreedySearch(beam_width=2).select(predictions,
                                                     baseline=base)
        assert len(selected) == 3  # beam of 2 + the baseline
        assert base in selected
        # The beam holds the best predictions: the largest widths.
        widths = {p.vectorization for p in selected}
        assert widths == {8, 4, 1}

    def test_strategy_registry(self):
        assert get_strategy("exhaustive").name == "exhaustive"
        assert get_strategy("beam", beam_width=3).beam_width == 3
        with pytest.raises(DefinitionError, match="unknown search"):
            get_strategy("annealing")


class TestExplorer:
    def test_deterministic_ranked_report(self):
        program = small_chain()
        one = explore(program, strategy="exhaustive", seed=3)
        two = explore(program, strategy="exhaustive", seed=3)
        assert one.ranking_signature() == two.ranking_signature()
        assert one.best.point == two.best.point

    def test_cache_makes_repeat_sweeps_incremental(self):
        program = small_chain()
        cache = ResultCache()
        first = explore(program, cache=cache)
        assert first.cache_hits == 0
        assert len(cache) > 0
        second = explore(program, cache=cache)
        assert second.cache_hits == len(cache)
        assert all(e.cache_hit for e in second.entries if e.simulated)
        assert second.ranking_signature() == first.ranking_signature()

    def test_cache_distinguishes_programs(self):
        a = program_fingerprint(small_chain())
        b = program_fingerprint(chain(4, shape=(8, 8, 16)))
        # Vectorization is a configuration axis, not program identity.
        w = program_fingerprint(
            small_chain().with_vectorization(4))
        assert a != b
        assert a == w

    def test_cache_json_round_trip(self, tmp_path):
        cache = ResultCache()
        explore(small_chain(), cache=cache)
        path = tmp_path / "cache.json"
        cache.save(path)
        loaded = ResultCache.load(path)
        assert len(loaded) == len(cache)
        report = explore(small_chain(), cache=loaded)
        assert report.cache_hits == len(loaded)

    def test_report_json_round_trip(self, tmp_path):
        report = explore(small_chain(), strategy="exhaustive")
        assert ExplorationReport.from_json(report.to_json()) == report
        path = tmp_path / "report.json"
        report.save(path)
        assert ExplorationReport.load(path) == report

    @pytest.mark.parametrize("program", [
        laplace2d(shape=(16, 16)),
        build("vadv", shape=(8, 8, 8)),
    ], ids=["laplace2d", "vertical_advection"])
    def test_model_error_bounds(self, program):
        report = explore(program, strategy="exhaustive")
        assert report.simulated_points > 0
        assert report.worst_model_error is not None
        assert report.worst_model_error <= 0.05

    def test_fractional_rate_model_error(self):
        space = ConfigSpace(vectorizations=(1, 2),
                            device_counts=(2,),
                            network_rates=(0.5,),
                            network_latencies=(16,))
        report = explore(small_chain(), space=space,
                         strategy="exhaustive")
        multi = [e for e in report.entries
                 if e.simulated and e.devices_used == 2]
        assert multi
        assert all(abs(e.model_error) <= 0.25 for e in multi)

    def test_network_rates_sweep_runs_batched(self):
        # The explorer's network_rates axis is exactly the
        # configuration class the super-pattern planner accelerates:
        # every fractional point must validate on the batched engine
        # (no scalar fallback), including irreducible p/q rates.
        space = ConfigSpace(vectorizations=(1,),
                            device_counts=(2,),
                            network_rates=(1.0, 0.5, 1.0 / 3.0,
                                           3.0 / 7.0),
                            network_latencies=(16,))
        report = explore(small_chain(), space=space,
                         strategy="exhaustive")
        fractional = [e for e in report.entries
                      if e.simulated
                      and e.point.network_words_per_cycle < 1.0]
        assert len(fractional) == 3
        assert all(e.engine == "batched" for e in fractional)
        # Slower links cost cycles, monotonically.
        by_rate = sorted(fractional,
                         key=lambda e: e.point.network_words_per_cycle)
        cycles = [e.simulated_cycles for e in by_rate]
        assert cycles == sorted(cycles, reverse=True)

    @pytest.mark.parametrize("program", [
        horizontal_diffusion(shape=(16, 16, 8)),
        build("swe", shape=(16, 16)),
    ], ids=["hdiff", "shallow_water"])
    def test_best_no_slower_than_cli_defaults(self, program):
        report = explore(program)
        base = report.baseline_entry
        assert base is not None and base.simulated
        assert report.best.simulated_cycles <= base.simulated_cycles
        assert report.speedup_over_baseline >= 1.0

    def test_hdiff_space_prunes_half_analytically(self):
        report = explore(horizontal_diffusion(shape=(16, 16, 8)))
        assert report.total_points >= 24
        assert report.prune_fraction >= 0.5

    def test_pareto_contains_best(self):
        report = explore(small_chain(), strategy="exhaustive")
        frontier = report.pareto_frontier
        assert report.best in frontier
        # Frontier entries are mutually non-dominated.
        for entry in frontier:
            for other in frontier:
                if entry is other:
                    continue
                assert not (
                    other.simulated_cycles <= entry.simulated_cycles
                    and other.utilization <= entry.utilization
                    and (other.simulated_cycles < entry.simulated_cycles
                         or other.utilization < entry.utilization))

    def test_explicit_inputs_are_honoured(self):
        program = laplace2d(shape=(8, 8))
        inputs = {"a": np.ones((8, 8), dtype=np.float32)}
        report = explore(program, inputs=inputs,
                         space=ConfigSpace(vectorizations=(1, 2)))
        assert report.simulated_points == 2

    def test_session_explore_reuses_cache(self):
        session = Session(small_chain())
        first = session.explore()
        second = session.explore()
        assert first.cache_hits == 0
        assert second.cache_hits > 0
        assert second.ranking_signature() == first.ranking_signature()


class TestTransformAxes:
    """Fusion/canonicalize as first-class ConfigSpace axes."""

    def test_point_transform_flags_round_trip(self):
        point = ConfigPoint(vectorization=2, canonicalize=True,
                            fusion=True,
                            link_rates=(("s0:s1", 0.5),))
        assert ConfigPoint.from_json(point.to_json()) == point
        assert "cz" in point.label() and "fu" in point.label()

    def test_space_transform_axes_enumerate(self):
        space = ConfigSpace(vectorizations=(1,),
                            canonicalizations=(False, True),
                            fusions=(False, True))
        assert space.size == 4
        flags = {(p.canonicalize, p.fusion) for p in space.points()}
        assert len(flags) == 4

    def test_fusion_axis_changes_the_simulated_machine(self):
        from repro.programs import horizontal_diffusion
        program = horizontal_diffusion(shape=(16, 16, 8))
        space = ConfigSpace(vectorizations=(1,),
                            fusions=(False, True))
        report = explore(program, space=space, strategy="exhaustive")
        fused = [e for e in report.entries
                 if e.simulated and e.point.fusion]
        plain = [e for e in report.entries
                 if e.simulated and not e.point.fusion]
        assert fused and plain
        # Fusion rebuilds the machine: a genuinely different design
        # with its own measured cycle count, not a cache alias.
        assert fused[0].simulated_cycles != plain[0].simulated_cycles
        assert not fused[0].cache_hit

    def test_noop_transform_axis_does_not_duplicate_work(self):
        # laplace2d has nothing to fold: the canonicalize axis doubles
        # the point count but must not double analyses or simulations.
        from repro.lowering import reset_default_cache
        reset_default_cache()
        program = laplace2d(shape=(16, 16))
        space = ConfigSpace(vectorizations=(1, 2),
                            canonicalizations=(False, True))
        cache = ResultCache()
        report = explore(program, space=space, strategy="exhaustive",
                         cache=cache, persist=False)
        simulated = [e for e in report.entries if e.simulated]
        assert len(simulated) == 4
        # Two distinct machines (W=1, W=2): the canonicalized twins
        # collapse onto their plain siblings before any simulation —
        # only two measurements exist, and only two programs (the two
        # widths) were ever analyzed.
        assert len(cache) == 2
        assert report.relowered_programs == 2

    def test_repeated_sweep_relowers_nothing(self):
        # The acceptance criterion: a repeated identical sweep reports
        # zero re-lowered programs and all-hit measurements.
        from repro.lowering import reset_default_cache
        reset_default_cache()
        program = small_chain()
        space = ConfigSpace(vectorizations=(1, 2),
                            fusions=(False, True))
        cache = ResultCache()
        first = explore(program, space=space, cache=cache,
                        persist=False)
        assert first.relowered_programs > 0
        second = explore(program, space=space, cache=cache,
                         persist=False)
        assert second.relowered_programs == 0
        assert second.lowering_cache_hits > 0
        assert all(e.cache_hit for e in second.entries if e.simulated)
        assert second.ranking_signature() == first.ranking_signature()


class TestLinkRateAxis:
    def test_link_rate_override_slows_only_named_edge(self):
        program = small_chain()
        space = ConfigSpace(vectorizations=(1,), device_counts=(2,),
                            network_latencies=(16,),
                            link_rate_sets=((), (("s1:s2", 0.5),)))
        report = explore(program, space=space, strategy="exhaustive")
        plain = [e for e in report.entries
                 if e.simulated and not e.point.link_rates]
        throttled = [e for e in report.entries
                     if e.simulated and e.point.link_rates]
        assert plain and throttled
        assert throttled[0].simulated_cycles > plain[0].simulated_cycles

    def test_unmatched_override_is_pruned_with_reason(self):
        pruner = Pruner(small_chain())
        verdict = pruner.predict(ConfigPoint(
            devices=2, link_rates=(("nope:s1", 0.5),)))
        assert not verdict.feasible
        assert "matches no edge" in verdict.reason


class TestPersistentResultCache:
    def test_sweep_persists_and_reloads_across_cache_instances(self):
        # Two explore calls with no shared ResultCache object: the
        # second must hit through the on-disk default path (pointed at
        # a per-test directory by the conftest fixture).
        program = laplace2d(shape=(16, 16))
        space = ConfigSpace(vectorizations=(1, 2))
        first = explore(program, space=space, strategy="exhaustive")
        assert first.cache_hits == 0
        assert ResultCache.default_path().exists()
        second = explore(program, space=space, strategy="exhaustive")
        assert second.cache_hits == second.simulated_points > 0
        assert second.ranking_signature() == first.ranking_signature()

    def test_opt_out_leaves_disk_untouched(self):
        program = laplace2d(shape=(16, 16))
        space = ConfigSpace(vectorizations=(1,))
        explore(program, space=space, strategy="exhaustive",
                persist=False)
        assert not ResultCache.default_path().exists()

    def test_merge_prefers_existing_entries(self):
        from repro.explore import Measurement
        a = ResultCache()
        b = ResultCache()
        mine = Measurement(1, 1, 0.1, "batched")
        theirs = Measurement(2, 2, 0.2, "scalar")
        a.put("f", ("k",), mine)
        b.put("f", ("k",), theirs)
        b.put("f", ("other",), theirs)
        assert a.merge(b) == 1
        assert a.get("f", ("k",)) == mine
        assert len(a) == 2

    def test_persisted_entries_are_engine_specific(self):
        # A sweep persisted under one engine must not serve its
        # measurements (whose engine/wall-time metadata differ) to a
        # sweep under another engine.
        program = laplace2d(shape=(12, 12))
        space = ConfigSpace(vectorizations=(1,))
        explore(program, space=space, strategy="exhaustive",
                engine_mode="scalar")
        report = explore(program, space=space, strategy="exhaustive",
                         engine_mode="batched")
        assert report.cache_hits == 0
        simulated = [e for e in report.entries if e.simulated]
        assert simulated and all(e.engine == "batched"
                                 for e in simulated)

    def test_corrupt_persistent_cache_is_ignored(self, tmp_path):
        path = ResultCache.default_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"key": null}')
        cache = ResultCache()
        assert cache.load_persistent() == 0
        program = laplace2d(shape=(12, 12))
        report = explore(program,
                         space=ConfigSpace(vectorizations=(1,)),
                         strategy="exhaustive")
        assert report.simulated_points > 0


class TestLinkRateModel:
    def test_raising_override_unthrottles_the_prediction(self):
        # An override *above* the global rate un-throttles its edge;
        # with every cut edge overridden to full speed, the model must
        # not apply the global fractional stretch.
        pruner = Pruner(small_chain())
        throttled = pruner.predict(ConfigPoint(
            devices=2, network_words_per_cycle=0.5,
            network_latency=16))
        unthrottled = pruner.predict(ConfigPoint(
            devices=2, network_words_per_cycle=0.5,
            network_latency=16, link_rates=(("s1:s2", 1.0),)))
        full_speed = pruner.predict(ConfigPoint(
            devices=2, network_latency=16))
        assert throttled.feasible and unthrottled.feasible
        assert throttled.predicted_cycles > \
            unthrottled.predicted_cycles
        assert unthrottled.predicted_cycles == \
            full_speed.predicted_cycles

    def test_model_matches_simulation_with_mixed_rates(self):
        space = ConfigSpace(vectorizations=(1,), device_counts=(2,),
                            network_rates=(0.5,),
                            network_latencies=(16,),
                            link_rate_sets=((), (("s1:s2", 1.0),)))
        report = explore(small_chain(), space=space,
                         strategy="exhaustive", persist=False)
        measured = [e for e in report.entries
                    if e.simulated and e.devices_used == 2]
        assert len(measured) == 2
        for entry in measured:
            assert abs(entry.model_error) <= 0.25, entry.point.label()

    def test_input_edge_override_prices_like_the_simulator(self):
        # An input consumed on two devices yields a remote
        # input→stencil link the simulator rate-limits; the model must
        # see an override on it (Eq.1 min over *remote* edges, not
        # just stencil-stencil cut edges).
        from repro.core import StencilProgram
        program = StencilProgram.from_json({
            "name": "shared_input",
            "inputs": {"a": {"dtype": "float32", "dims": ["i"]}},
            "outputs": ["s0", "s1"],
            "shape": [64],
            "program": {
                "s0": {"code": "a[i] + 1.0",
                       "boundary_condition": "shrink"},
                "s1": {"code": "a[i] * 2.0",
                       "boundary_condition": "shrink"},
            },
        })
        space = ConfigSpace(vectorizations=(1,),
                            network_latencies=(8,),
                            link_rate_sets=((("a:s1", 0.25),),))
        report = explore(program, space=space, strategy="exhaustive",
                         inputs={"a": np.ones(64, dtype=np.float32)},
                         persist=False)
        # Explicit 2-device split: one stencil per device.
        pruner = Pruner(program)
        point = ConfigPoint(devices=2, network_latency=8,
                            link_rates=(("a:s1", 0.25),))
        verdict = pruner.predict(point)
        assert verdict.feasible
        from repro.simulator import SimulatorConfig, simulate
        from repro.simulator.engine import resolve_link_rates
        config = SimulatorConfig(
            network_latency=8,
            network_link_rates=resolve_link_rates(
                program, point.link_rates))
        result = simulate(program,
                          {"a": np.ones(64, dtype=np.float32)},
                          config, device_of=verdict.device_of)
        error = result.cycles / verdict.predicted_cycles - 1.0
        assert abs(error) <= 0.25, (result.cycles,
                                    verdict.predicted_cycles)

    def test_inactive_override_shares_the_machine(self):
        # An override on an edge that stays local (single device) must
        # not split the simulation key: both points are one machine.
        program = laplace2d(shape=(16, 16))
        space = ConfigSpace(
            vectorizations=(1,),
            link_rate_sets=((), (("a:b", 0.5),)))
        cache = ResultCache()
        report = explore(program, space=space, strategy="exhaustive",
                         cache=cache, persist=False)
        simulated = [e for e in report.entries if e.simulated]
        assert len(simulated) == 2
        assert len(cache) == 1
        cycles = {e.simulated_cycles for e in simulated}
        assert len(cycles) == 1
