"""Scalar vs batched engine equivalence.

The batched engine's contract is *identical observable machine state at
every stall point*: bitwise-equal outputs, and exactly equal cycle
counts, stall counters, steady-state stall counters, channel occupancy
high-water marks, and streaming-continuity flags.  This suite enforces
the contract across the program catalog, boundary conditions,
vectorization widths, multi-device placements, and failure modes
(deadlock, cycle-cap overrun).
"""

import numpy as np
import pytest

from repro.core import StencilProgram
from repro.errors import DeadlockError, SimulationError, ValidationError
from repro.programs import build, horizontal_diffusion
from repro.simulator import (
    BatchedSimulator,
    SimulatorConfig,
    resolve_engine_mode,
    simulate,
)
from repro.simulator.engine import make_simulator
from util import (
    chain_program,
    diamond_program,
    edge_keys,
    lst1_inputs,
    lst1_program,
    random_inputs,
)

#: SimulationResult fields that must match *exactly* between engines.
_EXACT_FIELDS = (
    "cycles",
    "expected_cycles",
    "stall_cycles",
    "steady_stall_cycles",
    "channel_occupancy",
    "output_continuous",
    "stencil_continuous",
)


def assert_equivalent(program, inputs, device_of=None, **config_kwargs):
    scalar = simulate(program, inputs,
                      SimulatorConfig(engine_mode="scalar",
                                      **config_kwargs), device_of)
    batched = simulate(program, inputs,
                       SimulatorConfig(engine_mode="batched",
                                       **config_kwargs), device_of)
    assert scalar.outputs.keys() == batched.outputs.keys()
    for name in scalar.outputs:
        a, b = scalar.outputs[name], batched.outputs[name]
        assert a.dtype == b.dtype, name
        assert a.shape == b.shape, name
        assert np.array_equal(a, b, equal_nan=True), \
            f"output {name!r} not bitwise identical"
        if a.dtype.kind == "f":
            # == treats -0.0 as +0.0; enforce the sign bit on zeros
            # too (NaN payloads are the one tolerated difference).
            zeros = a == 0
            assert np.array_equal(np.signbit(a[zeros]),
                                  np.signbit(b[zeros])), \
                f"output {name!r} differs in zero signs"
    for field in _EXACT_FIELDS:
        assert getattr(scalar, field) == getattr(batched, field), field
    return scalar, batched


CATALOG_CASES = [
    ("laplace2d", dict(shape=(16, 16))),
    ("jacobi2d", dict(shape=(16, 16))),
    ("jacobi3d", dict(shape=(8, 8, 8))),
    ("diffusion2d", dict(shape=(16, 16))),
    ("diffusion3d", dict(shape=(8, 8, 8))),
    ("horizontal_diffusion", dict(shape=(8, 8, 8))),
]


@pytest.mark.parametrize("name,kwargs", CATALOG_CASES,
                         ids=[c[0] for c in CATALOG_CASES])
def test_catalog_programs(name, kwargs):
    program = build(name, **kwargs)
    assert_equivalent(program, random_inputs(program))


@pytest.mark.parametrize("width", [1, 4])
def test_lst1_boundaries_and_vectorization(width):
    # lst1 exercises constant and copy boundary conditions plus shrink.
    program = lst1_program().with_vectorization(width)
    assert_equivalent(program, lst1_inputs())


@pytest.mark.parametrize("width", [1, 4])
def test_hdiff_vectorized(width):
    program = horizontal_diffusion(shape=(8, 8, 8), vectorization=width)
    assert_equivalent(program, random_inputs(program))


def test_chain():
    program = chain_program(4)
    assert_equivalent(program, random_inputs(program))


def test_diamond_delay_buffers():
    program = diamond_program()
    scalar, _batched = assert_equivalent(program, random_inputs(program))
    # Sanity: this shape actually exercises steady streaming.
    assert all(scalar.output_continuous.values())


def _int_program(code="a[i-1] + a[i] * 2", dtype="int32",
                 boundary=None):
    return StencilProgram.from_json({
        "inputs": {"a": {"dtype": dtype, "dims": ["i"]}},
        "outputs": ["s"],
        "shape": [32],
        "program": {"s": {
            "code": code,
            "boundary_condition": boundary or {
                "a": {"type": "constant", "value": 3}}}},
    })


def test_integer_program_small_values_equivalent():
    # Within float64's exact-integer range the batched engine (forced)
    # still matches the scalar engine bitwise.
    program = _int_program()
    inputs = {"a": np.arange(32, dtype=np.int32)}
    assert_equivalent(program, inputs)


def test_integer_program_auto_uses_scalar():
    # Beyond 2**53 float64 slabs cannot be bit-exact; "auto" keeps the
    # scalar engine for integer-typed programs.
    program = _int_program(dtype="int64")
    assert resolve_engine_mode(SimulatorConfig(),
                               program=program) == "scalar"
    inputs = {"a": np.full(32, (1 << 60) + 1, dtype=np.int64)}
    auto = simulate(program, inputs, SimulatorConfig())
    scalar = simulate(program, inputs,
                      SimulatorConfig(engine_mode="scalar"))
    np.testing.assert_array_equal(auto.outputs["s"], scalar.outputs["s"])


def test_integer_overflow_rejected_by_forced_batched():
    # Forcing the batched engine on out-of-range integers must fail
    # loudly instead of silently rounding through float64.
    program = _int_program(dtype="int64")
    inputs = {"a": np.full(32, (1 << 60) + 1, dtype=np.int64)}
    with pytest.raises(SimulationError, match="2\\*\\*53"):
        simulate(program, inputs, SimulatorConfig(engine_mode="batched"))


def test_integer_output_nan_raises_in_both_engines():
    # A shrink boundary injects NaN into an int-typed output; the
    # scalar engine raises at the per-lane cast and the batched engine
    # must do the same instead of storing INT_MIN.
    program = _int_program(boundary="shrink")
    inputs = {"a": np.arange(32, dtype=np.int32)}
    for mode in ("scalar", "batched"):
        with pytest.raises(ValueError, match="NaN"):
            simulate(program, inputs, SimulatorConfig(engine_mode=mode))


def test_literal_call_arguments():
    # All-literal math-call arguments exercise the guarded fallback's
    # scalar path (frompyfunc returns plain scalars there).
    program = StencilProgram.from_json({
        "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
        "outputs": ["s"],
        "shape": [8, 8],
        "program": {"s": {"code": "a[i,j] + log(1.947)",
                          "boundary_condition": "shrink"}},
    })
    assert_equivalent(program, random_inputs(program))


def test_complex_pow_poisons_identically():
    # pow(negative, fractional) promotes to complex in Python; both
    # engines must poison those cells with NaN rather than crash.
    program = StencilProgram.from_json({
        "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
        "outputs": ["s"],
        "shape": [8, 8],
        "program": {"s": {"code": "pow(a[i,j] - 2.0, 0.5)",
                          "boundary_condition": "shrink"}},
    })
    scalar, _batched = assert_equivalent(program, random_inputs(program))
    assert np.isnan(scalar.outputs["s"]).all()  # all inputs < 2


def test_one_dimensional_program():
    program = StencilProgram.from_json({
        "inputs": {"a": {"dtype": "float64", "dims": ["i"]}},
        "outputs": ["s"],
        "shape": [64],
        "program": {"s": {"code": "a[i-1] + 2*a[i] + a[i+1]",
                          "boundary_condition": {
                              "a": {"type": "constant", "value": 1.5}}}},
    })
    assert_equivalent(program, random_inputs(program))


def test_ternary_and_sqrt_program():
    # Data-dependent branches and a domain-error-prone call; shrink
    # boundaries inject NaNs that must propagate identically.
    program = StencilProgram.from_json({
        "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
        "outputs": ["t"],
        "shape": [12, 12],
        "program": {
            "s": {"code": "a[i,j] - 0.5", "boundary_condition": "shrink"},
            "t": {"code": "s[i-1,j] > 0 ? sqrt(s[i,j-1]) : s[i+1,j] / "
                          "s[i,j+1]",
                  "boundary_condition": "shrink"},
        },
    })
    assert_equivalent(program, random_inputs(program))


class TestMultiDevice:
    def test_two_device_chain(self):
        program = chain_program(4)
        assert_equivalent(program, random_inputs(program),
                          device_of={"s0": 0, "s1": 0, "s2": 1, "s3": 1})

    def test_two_device_lst1(self):
        program = lst1_program()
        assert_equivalent(program, lst1_inputs(), device_of={
            "b0": 0, "b1": 0, "b2": 0, "b3": 1, "b4": 1})

    def test_fractional_link_rate_falls_back_scalar(self):
        # words_per_cycle != 1 cannot batch; the batched engine must
        # step those cycles scalar and still match exactly.
        program = chain_program(2, shape=(4, 4, 8))
        assert_equivalent(program, random_inputs(program),
                          device_of={"s0": 0, "s1": 1},
                          network_words_per_cycle=0.25)


class TestFailureModes:
    def test_underprovisioned_deadlock_identical(self):
        program = diamond_program(long_branch=2)
        inputs = random_inputs(program)
        errors = {}
        for mode in ("scalar", "batched"):
            config = SimulatorConfig(
                engine_mode=mode,
                channel_capacities={k: 2 for k in edge_keys(program)},
                deadlock_window=64)
            with pytest.raises(DeadlockError) as info:
                simulate(program, inputs, config)
            errors[mode] = info.value
        scalar, batched = errors["scalar"], errors["batched"]
        assert scalar.cycle == batched.cycle
        assert scalar.blocked_units == batched.blocked_units
        assert str(scalar) == str(batched)

    def test_cycle_cap_overrun_identical(self):
        program = chain_program(2)
        inputs = random_inputs(program)
        for mode in ("scalar", "batched"):
            with pytest.raises(SimulationError, match="exceeded 100"):
                simulate(program, inputs,
                         SimulatorConfig(engine_mode=mode, max_cycles=100))


def _random_program(rng):
    """A random small DAG: random rank, offsets, boundaries, and W."""
    rank = int(rng.integers(1, 4))
    dims = ["i", "j", "k"][:rank]
    shape = [int(rng.integers(4, 9)) * 2 for _ in range(rank)]
    width = int(rng.choice([w for w in (1, 2, 4) if shape[-1] % w == 0]))

    def access(field):
        offsets = []
        for d in dims:
            o = int(rng.integers(-2, 3))
            offsets.append(f"{d}{'+' if o > 0 else '-'}{abs(o)}" if o
                           else d)
        return f"{field}[{','.join(offsets)}]"

    program = {}
    available = ["a0"]
    for n in range(int(rng.integers(2, 5))):
        reads = list(rng.choice(
            available, size=min(len(available), int(rng.integers(1, 3))),
            replace=False))
        terms = [access(f) for f in reads
                 for _ in range(int(rng.integers(1, 3)))]
        code = " + ".join(f"{rng.random():.3f}*{t}" for t in terms)
        if rng.random() < 0.5:
            boundary = "shrink"
        else:
            boundary = {
                f: ({"type": "constant", "value": float(rng.random())}
                    if rng.random() < 0.5 else {"type": "copy"})
                for f in reads}
        program[f"s{n}"] = {"code": code, "boundary_condition": boundary}
        available.append(f"s{n}")
    return StencilProgram.from_json({
        "name": "fuzz",
        "inputs": {"a0": {"dtype": "float32", "dims": dims}},
        "outputs": [available[-1]],
        "shape": shape,
        "vectorization": width,
        "program": program,
    })


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
def test_randomized_programs(seed):
    """Seeded fuzz: random DAGs must be exactly equivalent, and random
    under-provisioned capacities must fail (or not) identically."""
    rng = np.random.default_rng(seed)
    program = _random_program(rng)
    inputs = random_inputs(program)
    assert_equivalent(program, inputs)

    capacities = {k: int(rng.integers(1, 5)) for k in edge_keys(program)}
    outcomes = {}
    for mode in ("scalar", "batched"):
        config = SimulatorConfig(engine_mode=mode,
                                 channel_capacities=capacities,
                                 deadlock_window=64)
        try:
            result = simulate(program, inputs, config)
            outcomes[mode] = ("done", result.cycles)
        except DeadlockError as exc:
            outcomes[mode] = ("deadlock", exc.cycle, exc.blocked_units)
    assert outcomes["scalar"] == outcomes["batched"]


class TestEngineSelection:
    def test_auto_prefers_batched(self):
        assert resolve_engine_mode(SimulatorConfig()) == "batched"
        simulator = make_simulator(chain_program(2))
        assert isinstance(simulator, BatchedSimulator)

    def test_auto_avoids_unbatchable_links(self):
        config = SimulatorConfig(network_words_per_cycle=0.5)
        assert resolve_engine_mode(config, {"s1": 1}) == "scalar"
        assert resolve_engine_mode(config) == "batched"

    def test_auto_ignores_single_device_placements(self):
        # A placement with every stencil on one device creates no
        # links, so fractional rates are irrelevant and the batched
        # engine stays selected.
        program = chain_program(2)
        config = SimulatorConfig(network_words_per_cycle=0.5)
        placement = {"s0": 1, "s1": 1}
        assert resolve_engine_mode(config, placement,
                                   program) == "batched"
        split = {"s0": 0, "s1": 1}
        assert resolve_engine_mode(config, split, program) == "scalar"

    def test_explicit_modes(self):
        assert resolve_engine_mode(
            SimulatorConfig(engine_mode="scalar")) == "scalar"
        assert resolve_engine_mode(
            SimulatorConfig(engine_mode="batched"), {"s1": 1}) == "batched"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError, match="engine_mode"):
            resolve_engine_mode(SimulatorConfig(engine_mode="turbo"))

    def test_session_engine_override(self):
        from repro.run import Session
        program = lst1_program()
        session = Session(program)
        result = session.run(lst1_inputs(), engine_mode="batched")
        assert result.validated
