"""Scalar vs batched engine equivalence.

The batched engine's contract is *identical observable machine state at
every stall point*: bitwise-equal outputs, and exactly equal cycle
counts, stall counters, steady-state stall counters, channel occupancy
high-water marks, and streaming-continuity flags.  This suite enforces
the contract across the program catalog, boundary conditions,
vectorization widths, multi-device placements, and failure modes
(deadlock, cycle-cap overrun).
"""

import numpy as np
import pytest

from repro.core import StencilProgram
from repro.errors import DeadlockError, SimulationError, ValidationError
from repro.programs import build, horizontal_diffusion
from repro.simulator import (
    BatchedSimulator,
    SimulatorConfig,
    resolve_engine_mode,
    simulate,
)
from repro.simulator.engine import make_simulator
from util import (
    chain_program,
    diamond_program,
    edge_keys,
    lst1_inputs,
    lst1_program,
    random_inputs,
)

#: SimulationResult fields that must match *exactly* between engines.
_EXACT_FIELDS = (
    "cycles",
    "expected_cycles",
    "stall_cycles",
    "steady_stall_cycles",
    "channel_occupancy",
    "output_continuous",
    "stencil_continuous",
    "fault_report",
)


def assert_equivalent(program, inputs, device_of=None, **config_kwargs):
    scalar = simulate(program, inputs,
                      SimulatorConfig(engine_mode="scalar",
                                      **config_kwargs), device_of)
    batched = simulate(program, inputs,
                       SimulatorConfig(engine_mode="batched",
                                       **config_kwargs), device_of)
    assert scalar.outputs.keys() == batched.outputs.keys()
    for name in scalar.outputs:
        a, b = scalar.outputs[name], batched.outputs[name]
        assert a.dtype == b.dtype, name
        assert a.shape == b.shape, name
        assert np.array_equal(a, b, equal_nan=True), \
            f"output {name!r} not bitwise identical"
        if a.dtype.kind == "f":
            # == treats -0.0 as +0.0; enforce the sign bit on zeros
            # too (NaN payloads are the one tolerated difference).
            zeros = a == 0
            assert np.array_equal(np.signbit(a[zeros]),
                                  np.signbit(b[zeros])), \
                f"output {name!r} differs in zero signs"
    for field in _EXACT_FIELDS:
        assert getattr(scalar, field) == getattr(batched, field), field
    return scalar, batched


CATALOG_CASES = [
    ("laplace2d", dict(shape=(16, 16))),
    ("jacobi2d", dict(shape=(16, 16))),
    ("jacobi3d", dict(shape=(8, 8, 8))),
    ("diffusion2d", dict(shape=(16, 16))),
    ("diffusion3d", dict(shape=(8, 8, 8))),
    ("horizontal_diffusion", dict(shape=(8, 8, 8))),
]


@pytest.mark.parametrize("name,kwargs", CATALOG_CASES,
                         ids=[c[0] for c in CATALOG_CASES])
def test_catalog_programs(name, kwargs):
    program = build(name, **kwargs)
    assert_equivalent(program, random_inputs(program))


@pytest.mark.parametrize("width", [1, 4])
def test_lst1_boundaries_and_vectorization(width):
    # lst1 exercises constant and copy boundary conditions plus shrink.
    program = lst1_program().with_vectorization(width)
    assert_equivalent(program, lst1_inputs())


@pytest.mark.parametrize("width", [1, 4])
def test_hdiff_vectorized(width):
    program = horizontal_diffusion(shape=(8, 8, 8), vectorization=width)
    assert_equivalent(program, random_inputs(program))


def test_chain():
    program = chain_program(4)
    assert_equivalent(program, random_inputs(program))


def test_diamond_delay_buffers():
    program = diamond_program()
    scalar, _batched = assert_equivalent(program, random_inputs(program))
    # Sanity: this shape actually exercises steady streaming.
    assert all(scalar.output_continuous.values())


def _int_program(code="a[i-1] + a[i] * 2", dtype="int32",
                 boundary=None):
    return StencilProgram.from_json({
        "inputs": {"a": {"dtype": dtype, "dims": ["i"]}},
        "outputs": ["s"],
        "shape": [32],
        "program": {"s": {
            "code": code,
            "boundary_condition": boundary or {
                "a": {"type": "constant", "value": 3}}}},
    })


def test_integer_program_small_values_equivalent():
    program = _int_program()
    inputs = {"a": np.arange(32, dtype=np.int32)}
    assert_equivalent(program, inputs)


def test_integer_program_auto_batches_beyond_2_53():
    # Integer streams ride int64 slabs: "auto" now selects the batched
    # engine for integer-typed programs, bit-exact far beyond float64's
    # 2**53 integer range.
    program = _int_program(dtype="int64")
    assert resolve_engine_mode(SimulatorConfig(),
                               program=program) == "batched"
    inputs = {"a": np.full(32, (1 << 60) + 1, dtype=np.int64)}
    scalar, batched = assert_equivalent(program, inputs)
    # Sanity: the values really exceed float64's exact-integer range.
    assert int(scalar.outputs["s"][1]) == 3 * ((1 << 60) + 1)


def test_uint64_overflow_rejected_by_batched():
    # uint64 values beyond int64's range cannot ride int64 slabs; the
    # batched engine must fail loudly instead of wrapping.
    program = _int_program(code="a[i] + 1", dtype="uint64",
                           boundary={"a": {"type": "constant",
                                           "value": 0}})
    inputs = {"a": np.full(32, (1 << 63) + 7, dtype=np.uint64)}
    with pytest.raises(SimulationError, match="2\\*\\*63"):
        simulate(program, inputs, SimulatorConfig(engine_mode="batched"))


def test_integer_sink_overflow_raises_in_both_engines():
    # int32 output receiving a result beyond int32 range: the scalar
    # engine's per-element store raises OverflowError; the batched
    # slab store must do the same instead of wrapping.
    program = _int_program(code="a[i] * 65536")
    inputs = {"a": np.full(32, 1 << 16, dtype=np.int32)}
    for mode in ("scalar", "batched"):
        with pytest.raises(OverflowError, match="out of bounds"):
            simulate(program, inputs, SimulatorConfig(engine_mode=mode))


def test_integer_output_nan_raises_in_both_engines():
    # A shrink boundary injects NaN into an int-typed output; the
    # scalar engine raises at the per-lane cast and the batched engine
    # must do the same instead of storing INT_MIN.
    program = _int_program(boundary="shrink")
    inputs = {"a": np.arange(32, dtype=np.int32)}
    for mode in ("scalar", "batched"):
        with pytest.raises(ValueError, match="NaN"):
            simulate(program, inputs, SimulatorConfig(engine_mode=mode))


def test_literal_call_arguments():
    # All-literal math-call arguments exercise the guarded fallback's
    # scalar path (frompyfunc returns plain scalars there).
    program = StencilProgram.from_json({
        "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
        "outputs": ["s"],
        "shape": [8, 8],
        "program": {"s": {"code": "a[i,j] + log(1.947)",
                          "boundary_condition": "shrink"}},
    })
    assert_equivalent(program, random_inputs(program))


def test_complex_pow_poisons_identically():
    # pow(negative, fractional) promotes to complex in Python; both
    # engines must poison those cells with NaN rather than crash.
    program = StencilProgram.from_json({
        "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
        "outputs": ["s"],
        "shape": [8, 8],
        "program": {"s": {"code": "pow(a[i,j] - 2.0, 0.5)",
                          "boundary_condition": "shrink"}},
    })
    scalar, _batched = assert_equivalent(program, random_inputs(program))
    assert np.isnan(scalar.outputs["s"]).all()  # all inputs < 2


def test_one_dimensional_program():
    program = StencilProgram.from_json({
        "inputs": {"a": {"dtype": "float64", "dims": ["i"]}},
        "outputs": ["s"],
        "shape": [64],
        "program": {"s": {"code": "a[i-1] + 2*a[i] + a[i+1]",
                          "boundary_condition": {
                              "a": {"type": "constant", "value": 1.5}}}},
    })
    assert_equivalent(program, random_inputs(program))


def test_ternary_and_sqrt_program():
    # Data-dependent branches and a domain-error-prone call; shrink
    # boundaries inject NaNs that must propagate identically.
    program = StencilProgram.from_json({
        "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
        "outputs": ["t"],
        "shape": [12, 12],
        "program": {
            "s": {"code": "a[i,j] - 0.5", "boundary_condition": "shrink"},
            "t": {"code": "s[i-1,j] > 0 ? sqrt(s[i,j-1]) : s[i+1,j] / "
                          "s[i,j+1]",
                  "boundary_condition": "shrink"},
        },
    })
    assert_equivalent(program, random_inputs(program))


class TestMultiDevice:
    def test_two_device_chain(self):
        program = chain_program(4)
        assert_equivalent(program, random_inputs(program),
                          device_of={"s0": 0, "s1": 0, "s2": 1, "s3": 1})

    def test_two_device_lst1(self):
        program = lst1_program()
        assert_equivalent(program, lst1_inputs(), device_of={
            "b0": 0, "b1": 0, "b2": 0, "b3": 1, "b4": 1})

    def test_four_device_chain(self):
        program = chain_program(4, shape=(4, 8, 8))
        assert_equivalent(program, random_inputs(program),
                          device_of={f"s{n}": n for n in range(4)})

    def test_deep_links_lift_in_flight_bound(self):
        # A wire latency comparable to the whole run used to cap every
        # batch at ~latency cycles; the lifted bound must stay exact.
        program = chain_program(3, shape=(4, 8, 8))
        assert_equivalent(program, random_inputs(program),
                          device_of={"s0": 0, "s1": 1, "s2": 2},
                          network_latency=64)

    @pytest.mark.parametrize("rate", [0.25, 0.5, 1.5,
                                      # irreducible p/q with p > 1
                                      1.0 / 3.0, 3.0 / 7.0, 5.0 / 8.0])
    def test_fractional_link_rates_batch_exactly(self, rate):
        # words_per_cycle != 1 batches through the closed-form credit
        # schedule (and the super-pattern window planner) and must
        # still match the scalar engine exactly.
        program = chain_program(2, shape=(4, 4, 8))
        assert_equivalent(program, random_inputs(program),
                          device_of={"s0": 0, "s1": 1},
                          network_words_per_cycle=rate)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fractional_rate_fuzz(self, seed):
        # Random rates x random placements x random wire latencies.
        rng = np.random.default_rng(1000 + seed)
        program = chain_program(int(rng.integers(2, 5)), shape=(4, 4, 8))
        names = program.stencil_names
        devices = int(rng.integers(2, min(4, len(names)) + 1))
        split = sorted(rng.choice(
            np.arange(1, len(names)), size=devices - 1, replace=False))
        device_of = {}
        for idx, name in enumerate(names):
            device_of[name] = sum(idx >= s for s in split)
        rate = float(rng.choice([0.25, 0.5, 0.75, 1.5,
                                 1.0 / 3.0, 3.0 / 7.0]))
        latency = int(rng.choice([1, 4, 32, 64]))
        assert_equivalent(program, random_inputs(program),
                          device_of=device_of,
                          network_words_per_cycle=rate,
                          network_latency=latency)

    _MIXED_RATES = [1.0 / 3.0, 0.5, 3.0 / 7.0, 0.75, 1.0, 1.5]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mixed_rate_fuzz(self, seed):
        # Different p/q per link in one placement: each link follows its
        # own credit schedule and the super-pattern window is the LCM
        # of all of them.
        rng = np.random.default_rng(3000 + seed)
        program = chain_program(int(rng.integers(3, 5)), shape=(4, 4, 8))
        names = program.stencil_names
        devices = int(rng.integers(2, min(4, len(names)) + 1))
        split = sorted(rng.choice(
            np.arange(1, len(names)), size=devices - 1, replace=False))
        device_of = {}
        for idx, name in enumerate(names):
            device_of[name] = sum(idx >= s for s in split)
        rates = {key: float(rng.choice(self._MIXED_RATES))
                 for key in edge_keys(program)}
        assert_equivalent(program, random_inputs(program),
                          device_of=device_of,
                          network_words_per_cycle=0.5,
                          network_link_rates=rates,
                          network_latency=int(rng.choice([1, 8, 32])))

    def test_completion_inside_stretched_window(self):
        # Regression: a non-repeating super-pattern stretch used to
        # extend one zero-progress cycle past machine completion,
        # reporting cycles+1 vs the scalar engine.  Mixed irreducible
        # rates with tight capacities and a deep wire finish the run
        # inside a stretched window.
        program = chain_program(4, shape=(4, 4, 8))
        keys = edge_keys(program)
        rates = dict(zip(keys, (1.0 / 3.0, 1.0 / 3.0, 1.0 / 7.0,
                                1.0 / 3.0, 5.0 / 8.0)))
        capacities = dict(zip(keys, (2, 5, 5, 3, 1)))
        assert_equivalent(program, random_inputs(program),
                          device_of={"s0": 0, "s1": 1, "s2": 1, "s3": 1},
                          network_link_rates=rates,
                          channel_capacities=capacities,
                          network_latency=64)

    def test_mixed_rate_two_cuts_exact(self):
        # A deterministic mixed-rate machine: two cut edges at 1/3 and
        # 5/8 words/cycle; the slower link must dominate and both
        # engines must agree exactly.
        program = chain_program(3, shape=(4, 4, 8))
        keys = edge_keys(program)
        rates = {key: rate for key, rate in zip(keys[1:], (1.0 / 3.0,
                                                           5.0 / 8.0))}
        scalar, _ = assert_equivalent(
            program, random_inputs(program),
            device_of={"s0": 0, "s1": 1, "s2": 2},
            network_link_rates=rates)
        words = program.num_cells // program.vectorization
        assert scalar.cycles > 3 * words  # 1/3-rate link dominates


class TestIntegerPrograms:
    @pytest.mark.parametrize("dtype", ["int32", "int64", "uint16"])
    def test_dtype_fuzz(self, dtype):
        # Integer arithmetic (+, -, *, min/max, ternary selection) must
        # be exactly equal through int64 slabs.
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": dtype, "dims": ["i", "j"]}},
            "outputs": ["t"],
            "shape": [8, 8],
            "program": {
                "s": {"code": "a[i-1,j] + a[i,j] * 3 - a[i,j+1]",
                      "boundary_condition": {
                          "a": {"type": "constant", "value": 2}}},
                "t": {"code": "min(max(s[i,j-1], -s[i,j]), 100 + s[i,j])",
                      "boundary_condition": {
                          "s": {"type": "copy"}}},
            },
        })
        rng = np.random.default_rng(7)
        inputs = {"a": rng.integers(0, 50, (8, 8)).astype(dtype)}
        assert_equivalent(program, inputs)

    def test_integer_multi_device(self):
        # Integer slabs must survive network links (int64 ring rows).
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "int64", "dims": ["i"]}},
            "outputs": ["t"],
            "shape": [32],
            "program": {
                "s": {"code": "a[i-1] + a[i] * 2",
                      "boundary_condition": {
                          "a": {"type": "constant", "value": 3}}},
                "t": {"code": "s[i] - s[i+1]",
                      "boundary_condition": {
                          "s": {"type": "constant", "value": 0}}},
            },
        })
        inputs = {"a": np.arange(32, dtype=np.int64) + (1 << 55)}
        assert_equivalent(program, inputs,
                          device_of={"s": 0, "t": 1})

    @pytest.mark.parametrize("fill", [2.5, "shrink"])
    def test_float_leaking_boundaries_on_integer_fields(self, fill):
        # A shrink (NaN) or float-constant fill on an integer field
        # injects float lanes invisible to type inference; the affected
        # streams must be demoted to float64 slabs so the floats flow
        # downstream exactly as the scalar engine's Python floats do.
        boundary = "shrink" if fill == "shrink" else {
            "a": {"type": "constant", "value": fill}}
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "int32", "dims": ["i", "j"]}},
            "outputs": ["t"],
            "shape": [8, 8],
            "program": {
                "s": {"code": "a[i-1,j] * 3 + a[i,j+1]",
                      "boundary_condition": boundary},
                "t": {"code": "s[i,j-1] + s[i,j] * 2",
                      "boundary_condition": {
                          "s": {"type": "constant", "value": 0}}},
            },
        })
        from repro.simulator.batched import float_leaky_streams
        kind = "nan" if fill == "shrink" else "float"
        assert float_leaky_streams(program) == {"s": kind, "t": kind}
        rng = np.random.default_rng(11)
        inputs = {"a": rng.integers(-20, 20, (8, 8)).astype(np.int32)}
        if fill == "shrink":
            # NaN fills reach the int-typed sink: both engines raise
            # the same integer-store error.
            for mode in ("scalar", "batched"):
                with pytest.raises(ValueError, match="NaN"):
                    simulate(program, inputs,
                             SimulatorConfig(engine_mode=mode))
        else:
            assert_equivalent(program, inputs)

    def test_int64_overflow_raises_instead_of_wrapping(self):
        # An intermediate beyond int64 (exact in the scalar engine's
        # Python ints) must fail loudly, not silently wrap.
        program = _int_program(code="(a[i] * a[i]) > 100 ? 1 : 0",
                               dtype="int64")
        inputs = {"a": np.full(32, 1 << 32, dtype=np.int64)}
        scalar = simulate(program, inputs,
                          SimulatorConfig(engine_mode="scalar"))
        assert int(scalar.outputs["s"][0]) == 1
        with pytest.raises(SimulationError, match="overflows int64"):
            simulate(program, inputs,
                     SimulatorConfig(engine_mode="batched"))

    def test_int64_min_times_minus_one_raises(self):
        # floor_divide(int64_min, -1) wraps back to int64_min, so the
        # divide-back overflow check must special-case right == -1.
        program = _int_program(code="a[i] * -1", dtype="int64",
                               boundary={"a": {"type": "constant",
                                               "value": 0}})
        inputs = {"a": np.full(32, np.iinfo(np.int64).min,
                               dtype=np.int64)}
        with pytest.raises(OverflowError):
            simulate(program, inputs,
                     SimulatorConfig(engine_mode="scalar"))
        with pytest.raises((SimulationError, OverflowError)):
            simulate(program, inputs,
                     SimulatorConfig(engine_mode="batched"))

    def test_demoted_stream_keeps_integer_zero_signs(self):
        # A NaN-demoted integer stream rides float64 slabs, but its
        # non-NaN lanes are still Python ints in cell mode: negating an
        # integer zero must not produce -0.0 downstream.
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "int32", "dims": ["i"]}},
            "outputs": ["c"],
            "shape": [8],
            "program": {
                "b": {"code": "a[i-1] + a[i]",
                      "boundary_condition": "shrink"},
                "c": {"code": "atan2(-b[i] * 1.0, -1.0)",
                      "boundary_condition": {
                          "b": {"type": "constant", "value": 0}}},
            },
        })
        inputs = {"a": np.zeros(8, dtype=np.int32)}
        scalar, _ = assert_equivalent(program, inputs)
        # Sanity: the sign actually matters here (atan2(+0, -1) = pi).
        assert scalar.outputs["c"][1] > 3

    def test_mixed_int_float_fields(self):
        program = StencilProgram.from_json({
            "inputs": {
                "a": {"dtype": "int32", "dims": ["i", "j"]},
                "w": {"dtype": "float32", "dims": ["i", "j"]},
            },
            "outputs": ["t"],
            "shape": [8, 8],
            "program": {
                "t": {"code": "a[i-1,j] * w[i,j] + a[i,j+1]",
                      "boundary_condition": {
                          "a": {"type": "constant", "value": 1},
                          "w": {"type": "copy"}}},
            },
        })
        rng = np.random.default_rng(3)
        inputs = {"a": rng.integers(-9, 9, (8, 8)).astype(np.int32),
                  "w": rng.random((8, 8), dtype=np.float32)}
        assert_equivalent(program, inputs)


class TestFailureModes:
    def test_underprovisioned_deadlock_identical(self):
        program = diamond_program(long_branch=2)
        inputs = random_inputs(program)
        errors = {}
        for mode in ("scalar", "batched"):
            config = SimulatorConfig(
                engine_mode=mode,
                channel_capacities={k: 2 for k in edge_keys(program)},
                deadlock_window=64)
            with pytest.raises(DeadlockError) as info:
                simulate(program, inputs, config)
            errors[mode] = info.value
        scalar, batched = errors["scalar"], errors["batched"]
        assert scalar.cycle == batched.cycle
        assert scalar.blocked_units == batched.blocked_units
        assert str(scalar) == str(batched)
        # Structured forensics are built from terminal machine state,
        # so they must be identical too — and expose the Fig. 4
        # signature: a wait-for cycle through the join.
        assert scalar.report is not None
        assert scalar.report == batched.report
        assert scalar.report.wait_cycle is not None
        assert "join" in scalar.report.wait_cycle

    def test_cycle_cap_overrun_identical(self):
        program = chain_program(2)
        inputs = random_inputs(program)
        for mode in ("scalar", "batched"):
            with pytest.raises(SimulationError, match="exceeded 100"):
                simulate(program, inputs,
                         SimulatorConfig(engine_mode=mode, max_cycles=100))


def _random_program(rng):
    """A random small DAG: random rank, offsets, boundaries, and W."""
    rank = int(rng.integers(1, 4))
    dims = ["i", "j", "k"][:rank]
    shape = [int(rng.integers(4, 9)) * 2 for _ in range(rank)]
    width = int(rng.choice([w for w in (1, 2, 4) if shape[-1] % w == 0]))

    def access(field):
        offsets = []
        for d in dims:
            o = int(rng.integers(-2, 3))
            offsets.append(f"{d}{'+' if o > 0 else '-'}{abs(o)}" if o
                           else d)
        return f"{field}[{','.join(offsets)}]"

    program = {}
    available = ["a0"]
    for n in range(int(rng.integers(2, 5))):
        reads = list(rng.choice(
            available, size=min(len(available), int(rng.integers(1, 3))),
            replace=False))
        terms = [access(f) for f in reads
                 for _ in range(int(rng.integers(1, 3)))]
        code = " + ".join(f"{rng.random():.3f}*{t}" for t in terms)
        if rng.random() < 0.5:
            boundary = "shrink"
        else:
            boundary = {
                f: ({"type": "constant", "value": float(rng.random())}
                    if rng.random() < 0.5 else {"type": "copy"})
                for f in reads}
        program[f"s{n}"] = {"code": code, "boundary_condition": boundary}
        available.append(f"s{n}")
    return StencilProgram.from_json({
        "name": "fuzz",
        "inputs": {"a0": {"dtype": "float32", "dims": dims}},
        "outputs": [available[-1]],
        "shape": shape,
        "vectorization": width,
        "program": program,
    })


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
def test_randomized_programs(seed):
    """Seeded fuzz: random DAGs must be exactly equivalent, and random
    under-provisioned capacities must fail (or not) identically."""
    rng = np.random.default_rng(seed)
    program = _random_program(rng)
    inputs = random_inputs(program)
    assert_equivalent(program, inputs)

    capacities = {k: int(rng.integers(1, 5)) for k in edge_keys(program)}
    outcomes = {}
    for mode in ("scalar", "batched"):
        config = SimulatorConfig(engine_mode=mode,
                                 channel_capacities=capacities,
                                 deadlock_window=64)
        try:
            result = simulate(program, inputs, config)
            outcomes[mode] = ("done", result.cycles)
        except DeadlockError as exc:
            outcomes[mode] = ("deadlock", exc.cycle, exc.blocked_units)
    assert outcomes["scalar"] == outcomes["batched"]


class TestFaultInjection:
    """Seeded fault plans must be engine-equivalent: identical cycles,
    stalls, outputs, and fault reports (``_EXACT_FIELDS`` includes
    ``fault_report``, so ``assert_equivalent`` pins all of it)."""

    def test_unit_stall_equivalent(self):
        from repro.faults import FaultPlan, UnitStall
        program = chain_program(3)
        plan = FaultPlan(unit_stalls=(UnitStall("s1", 50, 120),))
        scalar, _ = assert_equivalent(program, random_inputs(program),
                                      fault_plan=plan)
        assert scalar.fault_report is not None
        assert scalar.fault_report.unit_stall_cycles["s1"] == 70

    def test_link_outage_and_degradation_equivalent(self):
        from repro.faults import FaultPlan, LinkFault
        program = chain_program(3, shape=(8, 8, 8))
        device_of = {"s0": 0, "s1": 0, "s2": 1}
        plan = FaultPlan(link_faults=(
            LinkFault("s1", "s2", 100, 220),
            LinkFault("s1", "s2", 300, 400, rate_scale=0.5),
        ))
        scalar, _ = assert_equivalent(program, random_inputs(program),
                                      device_of=device_of,
                                      fault_plan=plan)
        report = scalar.fault_report
        (outage,) = report.link_outage_cycles.values()
        (degraded,) = report.link_degraded_cycles.values()
        assert outage == 120
        assert degraded == 100

    def test_fault_windows_do_not_trip_deadlock_detector(self):
        # An outage longer than the deadlock window freezes the
        # machine without progress; both engines must ride it out.
        from repro.faults import FaultPlan, LinkFault
        program = chain_program(2, shape=(4, 4, 8))
        device_of = {"s0": 0, "s1": 1}
        plan = FaultPlan(link_faults=(
            LinkFault("s0", "s1", 40, 400),))
        assert_equivalent(program, random_inputs(program),
                          device_of=device_of, fault_plan=plan,
                          deadlock_window=64)

    def test_faulted_outputs_match_healthy_outputs(self):
        # Faults delay the machine but never corrupt data: the same
        # words come out, later.
        from repro.faults import FaultPlan, UnitStall
        program = chain_program(3)
        inputs = random_inputs(program)
        healthy = simulate(program, inputs, SimulatorConfig())
        plan = FaultPlan(unit_stalls=(UnitStall("s0", 10, 90),))
        faulted = simulate(program, inputs,
                           SimulatorConfig(fault_plan=plan))
        assert faulted.cycles > healthy.cycles
        for name in healthy.outputs:
            assert np.array_equal(healthy.outputs[name],
                                  faulted.outputs[name], equal_nan=True)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_randomized_fault_plans(self, seed):
        """Seeded fuzz over random programs *and* random fault plans:
        both engines must agree on every exact field, including the
        fault report — or fail identically."""
        from repro.faults import random_fault_plan
        rng = np.random.default_rng(9000 + seed)
        program = _random_program(rng)
        inputs = random_inputs(program)
        names = program.stencil_names
        device_of = {name: min(idx, 1)
                     for idx, name in enumerate(names)}
        plan = random_fault_plan(program, seed=seed, horizon=600,
                                 device_of=device_of)
        if plan.empty:
            plan = random_fault_plan(program, seed=seed + 100,
                                     horizon=600, device_of=device_of)
        outcomes = {}
        for mode in ("scalar", "batched"):
            config = SimulatorConfig(engine_mode=mode, fault_plan=plan,
                                     deadlock_window=128)
            try:
                result = simulate(program, inputs, config,
                                  device_of=device_of)
                outcomes[mode] = ("done", result.cycles,
                                  result.fault_report)
            except DeadlockError as exc:
                report = exc.report.to_json() if exc.report else None
                outcomes[mode] = ("deadlock", exc.cycle,
                                  exc.blocked_units, report)
        assert outcomes["scalar"] == outcomes["batched"]
        if outcomes["scalar"][0] == "done":
            assert_equivalent(program, inputs, device_of=device_of,
                              fault_plan=plan, deadlock_window=128)


class TestEngineSelection:
    def test_auto_prefers_batched(self):
        assert resolve_engine_mode(SimulatorConfig()) == "batched"
        simulator = make_simulator(chain_program(2))
        assert isinstance(simulator, BatchedSimulator)

    def test_auto_batches_fractional_links(self):
        # Fractional-rate links no longer defeat batching: "auto"
        # selects the batched engine regardless of rate or placement.
        config = SimulatorConfig(network_words_per_cycle=0.5)
        assert resolve_engine_mode(config, {"s1": 1}) == "batched"
        assert resolve_engine_mode(config) == "batched"
        program = chain_program(2)
        assert resolve_engine_mode(config, {"s0": 0, "s1": 1},
                                   program) == "batched"

    def test_explicit_modes(self):
        assert resolve_engine_mode(
            SimulatorConfig(engine_mode="scalar")) == "scalar"
        assert resolve_engine_mode(
            SimulatorConfig(engine_mode="batched"), {"s1": 1}) == "batched"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError, match="engine_mode"):
            resolve_engine_mode(SimulatorConfig(engine_mode="turbo"))

    def test_session_engine_override(self):
        from repro.run import Session
        program = lst1_program()
        session = Session(program)
        result = session.run(lst1_inputs(), engine_mode="batched")
        assert result.validated

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_auto_never_falls_back_to_scalar_stepping(self, seed):
        # engine_mode="auto" must select the batched engine for every
        # fuzzed healthy config — fractional and mixed link rates
        # included — and the batched engine must simulate it end to end
        # without a single scalar-stepped cycle (the fallback is
        # reserved for true standstills, i.e. deadlock detection).
        from repro.simulator import build_simulator
        rng = np.random.default_rng(4000 + seed)
        program = chain_program(int(rng.integers(2, 4)), shape=(4, 4, 8))
        names = program.stencil_names
        device_of = {name: min(idx, 1) for idx, name in enumerate(names)}
        rates = {key: float(rng.choice([1.0 / 3.0, 0.5, 3.0 / 7.0, 1.0]))
                 for key in edge_keys(program)}
        config = SimulatorConfig(
            network_words_per_cycle=float(rng.choice([0.5, 1.0])),
            network_link_rates=rates,
            network_latency=int(rng.choice([1, 8, 32])))
        assert resolve_engine_mode(config, device_of, program) == "batched"
        simulator = build_simulator(program, config, device_of)
        assert isinstance(simulator, BatchedSimulator)
        simulator.run(random_inputs(program))
        assert simulator.scalar_cycles == 0


class TestKernelEngine:
    """Batched vs compiled-kernel replay equivalence.

    The kernel engine records a batched run's control decisions into a
    content-addressed artifact and replays later runs as a cached slab
    pass; its contract is the batched engine's contract verbatim.  The
    artifact life cycle (invalidation, quarantine, backend ladder) is
    covered by ``test_kernel.py`` — here we only enforce equivalence,
    cold (record-and-compile) and warm (replay).
    """

    def _assert_kernel_matches(self, program, inputs, device_of=None,
                               **config_kwargs):
        batched = simulate(program, inputs,
                           SimulatorConfig(engine_mode="batched",
                                           **config_kwargs), device_of)
        kernel_cfg = SimulatorConfig(engine_mode="kernel",
                                     **config_kwargs)
        # Cold (records via the batched engine, then compiles) and warm
        # (pure replay) runs must both match; the in-process artifact
        # cache may pre-warm the first run, which is fine — the replay
        # path is guaranteed exercised by the second.
        for _ in range(2):
            kernel = simulate(program, inputs, kernel_cfg, device_of)
            assert kernel.profile.engine == "kernel"
            assert kernel.outputs.keys() == batched.outputs.keys()
            for name in batched.outputs:
                a, b = batched.outputs[name], kernel.outputs[name]
                assert a.dtype == b.dtype, name
                assert np.array_equal(a, b, equal_nan=True), \
                    f"output {name!r} not bitwise identical"
            for field in _EXACT_FIELDS:
                assert getattr(batched, field) == \
                    getattr(kernel, field), field
        return batched, kernel

    @pytest.mark.parametrize("name,kwargs", CATALOG_CASES,
                             ids=[c[0] for c in CATALOG_CASES])
    def test_catalog_programs(self, name, kwargs):
        program = build(name, **kwargs)
        self._assert_kernel_matches(program, random_inputs(program))

    def test_fractional_rates_multi_device(self):
        program = lst1_program((8, 8, 8)).with_vectorization(4)
        names = program.stencil_names
        device_of = {n: (0 if i < len(names) // 2 else 1)
                     for i, n in enumerate(names)}
        self._assert_kernel_matches(
            program, lst1_inputs((8, 8, 8)), device_of,
            network_words_per_cycle=1 / 3, network_latency=16)

    def test_int64_beyond_2_53(self):
        program = _int_program(dtype="int64")
        inputs = {"a": np.full(32, (1 << 60) + 1, dtype=np.int64)}
        batched, _kernel = self._assert_kernel_matches(program, inputs)
        assert any(np.abs(arr.astype(np.float64)).max() > 2 ** 53
                   for arr in batched.outputs.values())

    def test_fault_plan_replayed(self):
        from repro.faults import FaultPlan, UnitStall
        program = chain_program(3)
        plan = FaultPlan(unit_stalls=(UnitStall("s1", 50, 120),))
        batched, _kernel = self._assert_kernel_matches(
            program, random_inputs(program), fault_plan=plan)
        assert batched.fault_report is not None


class TestStackedSimulation:
    """Control-run stacking: ``simulate_stacked`` runs one program under
    N configurations for ~one data pass, and every member's timing must
    be bitwise identical to an independent full simulation."""

    def _assert_stacked_matches(self, program, inputs, configs,
                                device_ofs=None):
        from repro.simulator import simulate_stacked
        stacked = simulate_stacked(program, inputs, configs, device_ofs)
        if device_ofs is None:
            device_ofs = [None] * len(configs)
        assert len(stacked) == len(configs)
        for config, device_of, member in zip(configs, device_ofs,
                                             stacked):
            full = simulate(program, inputs, config, device_of)
            for field in _EXACT_FIELDS:
                assert getattr(full, field) == \
                    getattr(member, field), field
            assert member.outputs.keys() == full.outputs.keys()
            for name in full.outputs:
                assert np.array_equal(full.outputs[name],
                                      member.outputs[name],
                                      equal_nan=True), name
        return stacked

    def test_members_match_full_runs(self):
        program = build("laplace2d", shape=(16, 16))
        configs = [
            SimulatorConfig(network_latency=latency,
                            network_words_per_cycle=rate)
            for latency in (1, 8, 32)
            for rate in (1.0, 0.5, 1 / 3)
        ]
        self._assert_stacked_matches(program, random_inputs(program),
                                     configs)

    def test_multi_device_members(self):
        program = chain_program(3, shape=(4, 4, 8))
        names = program.stencil_names
        placements = [
            None,
            {n: min(i, 1) for i, n in enumerate(names)},
        ]
        configs = [SimulatorConfig(network_latency=8)] * len(placements)
        self._assert_stacked_matches(program, random_inputs(program),
                                     configs, placements)

    def test_member_deadlock_propagates(self):
        from repro.simulator import simulate_stacked
        program = diamond_program(long_branch=2)
        inputs = random_inputs(program)
        caps = {k: 2 for k in edge_keys(program)}
        healthy = SimulatorConfig()
        doomed = SimulatorConfig(channel_capacities=caps,
                                 deadlock_window=64)
        with pytest.raises(DeadlockError) as stacked_err:
            simulate_stacked(program, inputs, [healthy, doomed])
        with pytest.raises(DeadlockError) as full_err:
            simulate(program, inputs, doomed)
        assert stacked_err.value.cycle == full_err.value.cycle
        assert stacked_err.value.blocked_units == \
            full_err.value.blocked_units


class TestConfigParallelExplore:
    """``explore(config_parallel=True)`` stacks same-program points
    behind one representative full run; the report must be identical to
    the plain per-point sweep."""

    def _reports(self, workers):
        from repro.explore import ConfigSpace, ResultCache, explore
        program = build("laplace2d", shape=(16, 16))
        space = ConfigSpace(vectorizations=(4,),
                            network_latencies=(8, 16, 24, 32),
                            network_rates=(1.0, 0.5))
        kwargs = dict(space=space, strategy="exhaustive",
                      workers=workers, persist=False)
        plain = explore(program, cache=ResultCache(), **kwargs)
        stacked = explore(program, cache=ResultCache(),
                          config_parallel=True, **kwargs)
        return plain, stacked

    @pytest.mark.parametrize("workers", [1, 4],
                             ids=["serial", "pool"])
    def test_reports_identical(self, workers):
        plain, stacked = self._reports(workers)
        assert len(plain.entries) == len(stacked.entries)
        assert len(plain.entries) >= 8
        for a, b in zip(plain.entries, stacked.entries):
            assert a.point == b.point
            assert a.simulated == b.simulated
            assert a.simulated_cycles == b.simulated_cycles
            assert a.rank == b.rank
            assert a.pareto == b.pareto

    def test_process_backend_rejected(self):
        from repro.errors import DefinitionError
        from repro.explore import explore
        program = build("laplace2d", shape=(16, 16))
        with pytest.raises(DefinitionError, match="config_parallel"):
            explore(program, config_parallel=True, backend="process",
                    persist=False)


class TestDriftWindows:
    """Drifting-occupancy congruence: transient ramp/drain windows whose
    plain channels fill or drain at a constant per-window rate batch as
    repeated windows (with margin-clamped repeat counts) instead of
    stretching cycle by cycle — and stay bitwise exact."""

    def test_fractional_rate_ramp_batches_with_drift(self):
        program = lst1_program((16, 16, 16)).with_vectorization(4)
        names = program.stencil_names
        device_of = {n: (0 if i < len(names) // 2 else 1)
                     for i, n in enumerate(names)}
        inputs = lst1_inputs((16, 16, 16))
        scalar, batched = assert_equivalent(
            program, inputs, device_of,
            network_words_per_cycle=1 / 3, network_latency=16)
        # The contract check above is the point; this asserts the new
        # mechanism actually fired on a config known to ramp gradually.
        assert batched.profile.drift_windows > 0
        assert batched.profile.drift_windows <= \
            batched.profile.window_count

    def test_drift_absent_on_trivial_config(self):
        program = build("laplace2d", shape=(16, 16))
        _scalar, batched = assert_equivalent(program,
                                             random_inputs(program))
        assert batched.profile.drift_windows >= 0
