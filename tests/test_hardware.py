"""Unit tests for the hardware models: platforms, resources, frequency,
bandwidth."""

import pytest

from repro.errors import MappingError
from repro.hardware import (
    ARRIA10,
    BandwidthModel,
    P100,
    ResourceVector,
    STRATIX10,
    V100,
    XEON_12C,
    calibration,
    check_fits,
    design_frequency_mhz,
    estimate_resources,
    frequency_mhz,
    stencil_unit_resources,
)
from repro.programs import chain, horizontal_diffusion
from util import lst1_program


class TestResourceVector:
    def test_addition(self):
        a = ResourceVector(1, 2, 3, 4) + ResourceVector(10, 20, 30, 40)
        assert (a.alm, a.ff, a.m20k, a.dsp) == (11, 22, 33, 44)

    def test_scaled(self):
        v = ResourceVector(10, 10, 10, 10).scaled(0.5)
        assert v.alm == 5

    def test_utilization(self):
        u = ResourceVector(50, 0, 0, 0).utilization(
            ResourceVector(100, 1, 1, 1))
        assert u.alm == 0.5
        assert u.max_fraction == 0.5

    def test_fits_in(self):
        small = ResourceVector(1, 1, 1, 1)
        big = ResourceVector(2, 2, 2, 2)
        assert small.fits_in(big)
        assert not big.fits_in(small)


class TestPlatforms:
    def test_stratix10_specs(self):
        assert STRATIX10.peak_bandwidth_gbs == 76.8
        assert STRATIX10.available.dsp == 4468
        assert STRATIX10.total.m20k == 11721

    def test_neighbor_bandwidth(self):
        # Two 40 Gbit/s links = 10 GB/s.
        assert STRATIX10.neighbor_bandwidth_gbs == pytest.approx(10.0)

    def test_network_words_per_cycle(self):
        # 10 GB/s over 4-byte words at ~300 MHz: ~8 operands/cycle.
        words = STRATIX10.network_words_per_cycle(4, 300.0)
        assert words == pytest.approx(8.33, rel=0.01)

    def test_loadstore_roofline(self):
        ai = 65 / 18
        assert V100.roofline_gops(ai) == pytest.approx(ai * 900)
        assert V100.predicted_gops(ai) == pytest.approx(ai * 900 * 0.26)

    def test_arria10_smaller(self):
        assert ARRIA10.available.dsp < STRATIX10.available.dsp


class TestResources:
    def test_unit_resources_positive(self):
        program = lst1_program()
        unit = stencil_unit_resources(program, "b3")
        assert unit.alm > 0
        assert unit.m20k >= 1
        # b3 has one add: one DSP.
        assert unit.dsp == 1

    def test_vectorization_multiplies_dsp(self):
        p1 = chain(1, shape=(64, 32, 32))
        p8 = chain(1, shape=(64, 32, 32), vectorization=8)
        r1 = stencil_unit_resources(p1, "s0")
        r8 = stencil_unit_resources(p8, "s0")
        assert r8.dsp == 8 * r1.dsp

    def test_design_estimate_sums_units(self):
        program = chain(4, shape=(64, 32, 32))
        estimate = estimate_resources(program)
        total_units = sum(u.dsp for u in estimate.per_stencil.values())
        assert estimate.design.dsp == total_units

    def test_longer_chain_uses_more(self):
        short = estimate_resources(chain(2, shape=(64, 32, 32)))
        long = estimate_resources(chain(8, shape=(64, 32, 32)))
        assert long.design.alm > short.design.alm
        assert long.design.m20k > short.design.m20k

    def test_hdiff_fits_single_device(self):
        # Sec. IX-B: hdiff at W=8 uses ~26% ALM, 27% DSP, 20% M20K.
        estimate = estimate_resources(horizontal_diffusion(
            vectorization=8))
        assert estimate.fits
        util = estimate.utilization
        assert 0.05 < util.alm < 0.6
        assert 0.05 < util.dsp < 0.6

    def test_check_fits_raises(self):
        huge = chain(200, shape=(64, 32, 32), vectorization=8)
        with pytest.raises(MappingError, match="does not fit"):
            check_fits(huge)

    def test_summary(self):
        text = estimate_resources(lst1_program()).summary()
        assert "ALM" in text and "DSP" in text


class TestFrequency:
    def test_fmax_at_low_utilization(self):
        assert frequency_mhz(0.05) == STRATIX10.fmax_mhz

    def test_declines_with_pressure(self):
        assert frequency_mhz(0.9) < frequency_mhz(0.5) < frequency_mhz(0.2)

    def test_floor(self):
        assert frequency_mhz(5.0) == calibration.FREQ_FLOOR_MHZ

    def test_paper_band(self):
        # The paper's designs closed between 292 and 317 MHz at the
        # utilizations of Tab. I (17-82%).
        for utilization in (0.18, 0.35, 0.55, 0.8):
            f = frequency_mhz(utilization)
            assert 280 <= f <= 317

    def test_design_frequency(self):
        estimate = estimate_resources(chain(4, shape=(64, 32, 32)))
        assert design_frequency_mhz(estimate) == pytest.approx(
            frequency_mhz(estimate.utilization.max_fraction))


class TestBandwidth:
    def test_small_requests_served_fully(self):
        model = BandwidthModel()
        assert model.efficiency(8, 317.0) > 0.98

    def test_scalar_saturation(self):
        model = BandwidthModel()
        assert model.effective_gbs(500, 300.0, vector_width=1) == \
            pytest.approx(36.4, rel=0.01)

    def test_vector_saturation(self):
        model = BandwidthModel()
        assert model.effective_gbs(500, 300.0, vector_width=4) == \
            pytest.approx(58.3, rel=0.01)

    def test_w8_same_as_w4(self):
        # The paper: 8-way vectorized programs achieve similar bandwidth.
        model = BandwidthModel()
        a = model.effective_gbs(64, 300.0, vector_width=4)
        b = model.effective_gbs(64, 300.0, vector_width=8)
        assert a == pytest.approx(b)

    def test_monotone_in_request(self):
        model = BandwidthModel()
        served = [model.effective_gbs(r, 300.0) for r in range(1, 80, 4)]
        assert all(b >= a - 1e-9 for a, b in zip(served, served[1:]))

    def test_throughput_factor_bounds(self):
        model = BandwidthModel()
        assert model.throughput_factor(4, 300.0) == pytest.approx(1.0,
                                                                  abs=0.01)
        assert model.throughput_factor(100, 300.0) < 0.5

    def test_for_platform_scales(self):
        scaled = BandwidthModel.for_platform(ARRIA10)
        assert scaled.peak_gbs == ARRIA10.peak_bandwidth_gbs
        assert scaled.scalar_saturation_gbs < 36.4

    def test_zero_request(self):
        model = BandwidthModel()
        assert model.effective_gbs(0, 300.0) == 0.0
        assert model.efficiency(0, 300.0) == 1.0
