"""Unit tests for multi-device partitioning."""

import pytest

from repro.distributed import (
    check_network_feasible,
    edge_latency_map,
    partition_fixed,
    partition_program,
)
from repro.errors import MappingError
from repro.hardware import STRATIX10
from repro.programs import chain, horizontal_diffusion
from util import lst1_program


class TestPartitionFixed:
    def test_cut_edges(self):
        program = chain(4, shape=(16, 8, 8))
        partition = partition_fixed(
            program, {"s0": 0, "s1": 0, "s2": 1, "s3": 1})
        assert partition.num_devices == 2
        assert partition.cut_edges == (
            ("stencil:s1", "stencil:s2", "s1"),)

    def test_stencils_on(self):
        program = chain(4, shape=(16, 8, 8))
        partition = partition_fixed(
            program, {"s0": 0, "s1": 0, "s2": 1, "s3": 1})
        assert partition.stencils_on(0) == ("s0", "s1")
        assert partition.stencils_on(1) == ("s2", "s3")

    def test_missing_stencil_rejected(self):
        program = chain(3, shape=(16, 8, 8))
        with pytest.raises(MappingError, match="missing"):
            partition_fixed(program, {"s0": 0})

    def test_replicated_inputs(self):
        # lst1's a2 is read by b1 and b2; placing them on different
        # devices forces replication (Fig. 5).
        program = lst1_program()
        partition = partition_fixed(program, {
            "b0": 0, "b1": 0, "b2": 1, "b3": 0, "b4": 1})
        assert partition.replicated_inputs["a2"] == (0, 1)
        assert partition.replicated_inputs["a0"] == (0,)

    def test_single_device(self):
        program = chain(2, shape=(16, 8, 8))
        partition = partition_fixed(program, {"s0": 0, "s1": 0})
        assert partition.is_single_device
        assert partition.cut_edges == ()

    def test_link_operands(self):
        program = chain(4, shape=(16, 8, 8), vectorization=4)
        partition = partition_fixed(
            program, {"s0": 0, "s1": 0, "s2": 1, "s3": 1})
        # One cut stream at W=4.
        assert partition.required_link_operands_per_cycle() == 4


class TestPartitionProgram:
    def test_small_program_single_device(self):
        partition = partition_program(lst1_program(), STRATIX10)
        assert partition.is_single_device

    def test_large_chain_spans_devices(self):
        program = chain(150, shape=(256, 32, 32), vectorization=8)
        partition = partition_program(program, STRATIX10, max_devices=8)
        assert partition.num_devices > 1
        # Chain order is preserved: devices are monotone along the chain.
        devices = [partition.device_of[f"s{n}"] for n in range(150)]
        assert devices == sorted(devices)

    def test_max_devices_enforced(self):
        program = chain(150, shape=(256, 32, 32), vectorization=8)
        with pytest.raises(MappingError, match="more than 1 device"):
            partition_program(program, STRATIX10, max_devices=1)

    def test_hdiff_fits_one_device(self):
        partition = partition_program(
            horizontal_diffusion(vectorization=8), STRATIX10)
        assert partition.is_single_device


class TestNetwork:
    def test_edge_latency_map(self):
        program = chain(2, shape=(16, 8, 8))
        partition = partition_fixed(program, {"s0": 0, "s1": 1})
        latencies = edge_latency_map(partition, 32)
        assert latencies == {("stencil:s0", "stencil:s1", "s0"): 32}

    def test_feasible_low_width(self):
        program = chain(2, shape=(16, 8, 8))
        partition = partition_fixed(program, {"s0": 0, "s1": 1})
        headroom = check_network_feasible(partition, STRATIX10, 300.0)
        assert headroom > 1.0

    def test_infeasible_high_width(self):
        program = chain(2, shape=(16, 8, 16), vectorization=16)
        partition = partition_fixed(program, {"s0": 0, "s1": 1})
        # 16 operands/cycle > ~8 available on two 40 Gbit/s links.
        with pytest.raises(MappingError, match="network-bound"):
            check_network_feasible(partition, STRATIX10, 300.0)

    def test_no_cuts_infinite_headroom(self):
        program = chain(2, shape=(16, 8, 8))
        partition = partition_fixed(program, {"s0": 0, "s1": 0})
        assert check_network_feasible(partition) == float("inf")
