"""Unit tests for repro.core.boundary."""

import pytest

from repro.core import (
    BoundaryConditions,
    ConstantBoundary,
    CopyBoundary,
)
from repro.errors import DefinitionError


class TestParsing:
    def test_shrink_string(self):
        bc = BoundaryConditions.from_json("shrink")
        assert bc.shrink

    def test_shrink_default(self):
        bc = BoundaryConditions.from_json(None)
        assert bc.shrink

    def test_per_input(self):
        bc = BoundaryConditions.from_json({
            "a0": {"type": "constant", "value": 1},
            "a1": {"type": "copy"},
        })
        assert not bc.shrink
        assert bc.for_input("a0") == ConstantBoundary(1)
        assert bc.for_input("a1") == CopyBoundary()

    def test_constant_requires_value(self):
        with pytest.raises(DefinitionError, match="requires 'value'"):
            BoundaryConditions.from_json({"a": {"type": "constant"}})

    def test_unknown_type(self):
        with pytest.raises(DefinitionError, match="unknown boundary"):
            BoundaryConditions.from_json({"a": {"type": "mirror"}})

    def test_invalid_spec(self):
        with pytest.raises(DefinitionError):
            BoundaryConditions.from_json(42)


class TestSemantics:
    def test_shrink_excludes_per_input(self):
        with pytest.raises(DefinitionError, match="cannot be combined"):
            BoundaryConditions(shrink=True,
                               per_input={"a": CopyBoundary()})

    def test_for_input_on_shrink_raises(self):
        bc = BoundaryConditions(shrink=True)
        with pytest.raises(DefinitionError, match="shrink"):
            bc.for_input("a")

    def test_missing_input_raises(self):
        bc = BoundaryConditions(per_input={"a": CopyBoundary()})
        with pytest.raises(DefinitionError, match="no boundary"):
            bc.for_input("b")

    def test_has_input(self):
        bc = BoundaryConditions(per_input={"a": CopyBoundary()})
        assert bc.has_input("a")
        assert not bc.has_input("b")


class TestRoundtripAndMatch:
    def test_json_roundtrip_shrink(self):
        bc = BoundaryConditions(shrink=True)
        assert BoundaryConditions.from_json(bc.to_json()) == bc

    def test_json_roundtrip_per_input(self):
        bc = BoundaryConditions(per_input={
            "a": ConstantBoundary(2.5), "b": CopyBoundary()})
        assert BoundaryConditions.from_json(bc.to_json()) == bc

    def test_matches_same(self):
        a = BoundaryConditions(per_input={"x": ConstantBoundary(0)})
        b = BoundaryConditions(per_input={"x": ConstantBoundary(0),
                                          "y": CopyBoundary()})
        assert a.matches(b)

    def test_matches_conflicting_value(self):
        a = BoundaryConditions(per_input={"x": ConstantBoundary(0)})
        b = BoundaryConditions(per_input={"x": ConstantBoundary(1)})
        assert not a.matches(b)

    def test_matches_shrink_vs_per_input(self):
        a = BoundaryConditions(shrink=True)
        b = BoundaryConditions(per_input={"x": CopyBoundary()})
        assert not a.matches(b)
