"""Tests for the supervised multiprocess exploration service
(``repro.service``): journal round-trips, lease/crash-loop
accounting, thread-vs-process report equivalence, poison-pill
quarantine, graceful degradation when workers cannot spawn, and the
cross-process persistent-cache hammer."""

import json
import os
import subprocess
import sys
import types

import pytest

from repro.errors import DefinitionError, ServiceUnavailable
from repro.explore import ConfigSpace, ResultCache, explore
from repro.programs import laplace2d
from repro.service import (
    Job,
    JobJournal,
    LeaseTable,
    POISON_ENV,
    ServiceConfig,
    Supervisor,
    find_run_dirs,
)
from repro.service.journal import JOURNAL_NAME, new_run_dir


def _fast_service(tmp_path, **overrides) -> ServiceConfig:
    """Supervision tunables tightened for test wall time."""
    settings = dict(run_root=tmp_path / "service",
                    heartbeat_interval=0.05, poll=0.01,
                    join_timeout=3.0)
    settings.update(overrides)
    return ServiceConfig(**settings)


class TestJournal:
    def test_round_trip_and_replay(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        with JobJournal(path) as journal:
            journal.append("run_started", jobs=2)
            journal.append("job_enqueued", job=1)
            journal.append("job_enqueued", job=2)
            journal.append("lease_granted", lease=1, jobs=[1, 2])
            journal.append("job_completed", job=1)
            journal.append("worker_dead", worker=1, reason="test")
            journal.append("job_requeued", job=2)
            journal.append("job_completed", job=2)
            journal.append("run_completed")
        records = JobJournal.read(path)
        assert [r["seq"] for r in records] == list(range(1, 10))
        state = JobJournal.replay(path)
        assert state.jobs == {1: "completed", 2: "completed"}
        assert state.worker_deaths == 1
        assert state.requeues == 1
        assert state.completed_run
        assert state.unresolved() == []
        assert "completed: 2/2 jobs" in state.summary()

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        with JobJournal(path) as journal:
            journal.append("job_enqueued", job=1)
            journal.append("lease_granted", jobs=[1])
        with open(path, "a") as handle:
            handle.write('{"seq": 3, "event": "job_comp')  # torn
        state = JobJournal.replay(path)
        assert state.jobs == {1: "leased"}
        assert state.unresolved() == [1]
        assert "interrupted" in state.summary()

    def test_missing_journal_reads_empty(self, tmp_path):
        assert JobJournal.read(tmp_path / "absent.jsonl") == []

    def test_run_dir_discovery(self, tmp_path):
        root = tmp_path / "service"
        first = new_run_dir(root)
        second = new_run_dir(root, tag="chaos")
        assert first != second
        assert "chaos" in second.name
        # Only directories holding a journal count as run dirs.
        (first / JOURNAL_NAME).write_text("")
        (root / "not-a-run").mkdir()
        assert list(find_run_dirs(root)) == [first]


def _jobs(*ids):
    return [Job(job_id=i, prediction=None, entry_key=f"k{i}")
            for i in ids]


class TestLeaseTable:
    def test_grant_release(self):
        table = LeaseTable(ttl=10.0)
        lease = table.grant(worker_id=1, jobs=_jobs(1, 2), now=100.0)
        assert table.get(lease.lease_id) is lease
        assert [j.job_id for j in lease.outstanding] == [1, 2]
        assert not lease.expired(now=105.0)
        assert lease.expired(now=111.0)
        lease.renew(10.0, now=111.0)
        assert not lease.expired(now=120.0)
        assert table.release(lease.lease_id) is lease
        assert len(table) == 0

    def test_forfeit_charges_only_the_current_job(self):
        table = LeaseTable(ttl=10.0, max_point_deaths=2)
        lease = table.grant(1, _jobs(1, 2, 3), now=0.0)
        lease.note_started(1, now=0.0)
        lease.note_resolved(1)
        lease.note_started(2, now=1.0)
        requeue, culprit, poisoned = table.forfeit(lease.lease_id)
        assert culprit is not None and culprit.job_id == 2
        assert culprit.deaths == 1
        assert poisoned == []
        # Job 2 (one death) and untouched job 3 both go back.
        assert sorted(j.job_id for j in requeue) == [2, 3]
        assert [j.deaths for j in sorted(requeue,
                                         key=lambda j: j.job_id)] \
            == [1, 0]

    def test_second_death_poisons(self):
        table = LeaseTable(ttl=10.0, max_point_deaths=2)
        job = _jobs(7)[0]
        for expected_deaths in (1, 2):
            lease = table.grant(1, [job], now=0.0)
            lease.note_started(7, now=0.0)
            requeue, culprit, poisoned = table.forfeit(lease.lease_id)
            assert culprit is job and job.deaths == expected_deaths
        assert requeue == []
        assert poisoned == [job]

    def test_death_between_jobs_blames_nobody(self):
        table = LeaseTable(ttl=10.0)
        lease = table.grant(1, _jobs(1), now=0.0)
        requeue, culprit, poisoned = table.forfeit(lease.lease_id)
        assert culprit is None and poisoned == []
        assert [j.job_id for j in requeue] == [1]
        assert requeue[0].deaths == 0

    def test_forfeit_unknown_lease_is_empty(self):
        assert LeaseTable(ttl=1.0).forfeit(99) == ([], None, [])

    def test_current_overdue(self):
        table = LeaseTable(ttl=100.0)
        lease = table.grant(1, _jobs(1), now=0.0)
        assert not lease.current_overdue(5.0, now=50.0)  # nothing runs
        lease.note_started(1, now=50.0)
        assert not lease.current_overdue(None, now=500.0)  # no budget
        assert not lease.current_overdue(5.0, now=54.0)
        assert lease.current_overdue(5.0, now=56.0)


class TestShardCompaction:
    def test_adopt_serialized_skips_garbage(self):
        cache = ResultCache()
        good = {"simulated_cycles": 10, "sim_expected_cycles": 10,
                "wall_seconds": 0.1, "engine": "batched"}
        adopted = cache.adopt_serialized({
            "a": good, "b": {"not": "a measurement"}})
        assert adopted == 1 and len(cache) == 1

    def test_existing_entries_win(self):
        cache = ResultCache()
        cache.adopt_serialized({"a": {
            "simulated_cycles": 1, "sim_expected_cycles": 1,
            "wall_seconds": 0.0, "engine": "batched"}})
        cache.adopt_serialized({"a": {
            "simulated_cycles": 999, "sim_expected_cycles": 999,
            "wall_seconds": 0.0, "engine": "batched"}})
        [entry] = cache.to_json().values()
        assert entry["simulated_cycles"] == 1


def _sweep(tmp_path, backend, widths=(1, 2), **kwargs):
    program = laplace2d().with_shape((24, 24))
    kwargs.setdefault("service", _fast_service(tmp_path))
    if backend != "process":
        kwargs.pop("service")
    return explore(program,
                   space=ConfigSpace(vectorizations=widths),
                   strategy="exhaustive", workers=2,
                   persist=False, backend=backend, **kwargs)


def _comparable(report):
    """Entry records minus timing and cache provenance."""
    stripped = []
    for entry in report.entries:
        record = entry.to_json()
        record.pop("wall_seconds")
        record.pop("cache_hit")
        stripped.append(record)
    return stripped


class TestProcessBackend:
    def test_unknown_backend_is_rejected(self):
        with pytest.raises(DefinitionError, match="unknown explore "
                                                 "backend"):
            explore(laplace2d().with_shape((24, 24)),
                    backend="carrier-pigeon")

    def test_reports_match_thread_backend(self, tmp_path):
        """The acceptance criterion: fault-free process-backend sweeps
        are entry-for-entry identical to the thread backend."""
        thread = _sweep(tmp_path, "thread")
        process = _sweep(tmp_path, "process")
        assert process.ranking_signature() == \
            thread.ranking_signature()
        assert _comparable(process) == _comparable(thread)
        assert not process.failed_points
        # A clean run removes its run directory.
        assert list(find_run_dirs(tmp_path / "service")) == []

    def test_poison_point_is_quarantined(self, tmp_path, monkeypatch):
        """The chaos criterion: a point that SIGKILLs its worker on
        every attempt is quarantined after exactly two deaths while
        every other point still gets simulated."""
        monkeypatch.setenv(POISON_ENV, "W2 x1c")
        monkeypatch.setenv("REPRO_SERVICE_KEEP_RUNDIR", "1")
        report = _sweep(tmp_path, "process", widths=(1, 2, 4))
        by_label = {e.point.label(): e for e in report.entries}
        poisoned = by_label["W2 x1c"]
        assert poisoned.failed and not poisoned.simulated
        assert poisoned.failure.kind == "poisoned"
        assert poisoned.failure.attempts == 2
        assert "crash loop" in poisoned.failure.message
        for label in ("W1 x1c", "W4 x1c"):
            assert by_label[label].simulated
        # The journal recorded the two worker deaths and the verdict.
        [run_dir] = find_run_dirs(tmp_path / "service")
        state = JobJournal.replay(run_dir / JOURNAL_NAME)
        assert state.worker_deaths >= 2
        assert state.events.get("job_poisoned") == 1
        assert state.unresolved() == []

    def test_degrades_to_thread_backend(self, tmp_path, monkeypatch,
                                        capsys):
        def refuse(*args, **kwargs):
            raise ServiceUnavailable("spawn denied by test")

        monkeypatch.setattr(
            "repro.service.supervisor.simulate_frontier_supervised",
            refuse)
        report = _sweep(tmp_path, "process")
        assert report.simulated_points == 2
        assert not report.failed_points
        assert "falling back to the thread backend" in \
            capsys.readouterr().err

    def test_unspawnable_workers_raise_service_unavailable(
            self, tmp_path):
        """Below the fallback: the supervisor itself gives up with
        ``ServiceUnavailable`` after ``spawn_attempts`` consecutive
        spawn failures, journaling the abort."""
        prediction = types.SimpleNamespace(
            family_hash="fam", simulation_key=(1,),
            point=types.SimpleNamespace(label=lambda: "P"))
        program = types.SimpleNamespace(name="probe")
        supervisor = Supervisor(
            program, platform=None, predictions=[prediction],
            inputs={}, engine_mode="auto", cache=ResultCache(),
            config=_fast_service(tmp_path, spawn_attempts=3))

        class NoSpawn:
            def Pipe(self, duplex=True):
                raise OSError("spawn denied by test")

        supervisor._ctx = NoSpawn()
        with pytest.raises(ServiceUnavailable,
                           match="could not spawn"):
            supervisor.run()
        [run_dir] = find_run_dirs(tmp_path / "service")
        state = JobJournal.replay(run_dir / JOURNAL_NAME)
        assert state.aborted
        assert state.events.get("worker_spawn_failed") == 3


#: Child body for the cross-process cache hammer: put ROUNDS private
#: entries into the shared persistent cache file, saving (read-merge-
#: write under FileLock) after every put.
_HAMMER = """
import sys
sys.path.insert(0, {src!r})
{defeat_fcntl}
from repro.explore.cache import Measurement, ResultCache

path, tag = sys.argv[1], sys.argv[2]
cache = ResultCache()
for i in range({rounds}):
    cache.put(tag, (i,), Measurement(
        simulated_cycles=i, sim_expected_cycles=i,
        wall_seconds=0.0, engine="batched"))
    assert cache.save_persistent(path)
"""


class TestServeIntegration:
    def test_miss_job_runs_on_supervised_backend(self):
        """A serve cache miss funds a sweep on the supervised process
        backend, and the resulting report lands in both the frontier
        index and the report store."""
        from repro import api
        from repro.explore import iter_stored_reports
        from repro.serve import FrontierIndex, JobManager

        index = FrontierIndex()
        manager = JobManager(
            index, backend="process",
            explore_kwargs={
                "space": ConfigSpace(vectorizations=(1, 2)),
                "strategy": "exhaustive"})
        platform = api.resolve_platform(None)
        job, created = manager.enqueue(
            "laplace2d", (24, 24), platform,
            ("family", (24, 24), platform.name))
        assert created
        assert manager.wait_all(300)
        job = manager.get(job.job_id)
        assert job.state == "done", job.error
        assert len(index) == 1
        assert len(list(iter_stored_reports())) == 1
        entry, _ = index.locate("laplace2d", (24, 24), platform.name)
        assert entry is not None
        assert entry.best["simulated_cycles"] > 0


class TestConcurrentPersistence:
    @pytest.mark.parametrize("locking", ["flock", "fallback"])
    def test_two_processes_hammer_one_cache(self, tmp_path, locking):
        """Two real processes interleave read-merge-write cycles on
        one persistent cache file: every entry from both survives
        and nothing gets quarantined."""
        rounds = 12
        defeat = "" if locking == "flock" else \
            "import repro.faults.store as _store; _store.fcntl = None"
        src = os.path.join(os.path.dirname(__file__), os.pardir,
                           "src")
        script = _HAMMER.format(src=os.path.abspath(src),
                                defeat_fcntl=defeat, rounds=rounds)
        path = tmp_path / "explore_cache.json"
        procs = [subprocess.Popen(
            [sys.executable, "-c", script, str(path), tag],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
            for tag in ("left", "right")]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()

        merged = ResultCache()
        assert merged.load_persistent(path) == 2 * rounds
        for tag in ("left", "right"):
            for i in range(rounds):
                assert merged.get(tag, (i,)) is not None
        assert not any(".corrupt-" in p.name
                       for p in tmp_path.iterdir())

    def test_lockfile_fallback_serializes_rounds(self, tmp_path):
        """Sanity on the shape of the file after the hammer: valid
        JSON, every key distinct (merge-on-save, not last-writer-
        wins clobbering)."""
        cache = ResultCache()
        path = tmp_path / "cache.json"
        from repro.explore.cache import Measurement
        cache.put("f", (1,), Measurement(1, 1, 0.0, "batched"))
        assert cache.save_persistent(path)
        data = json.loads(path.read_text())
        assert len(data) == 1
