"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from util import lst1_spec


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.json"
    path.write_text(json.dumps(lst1_spec(shape=(8, 8, 8))))
    return path


class TestCLI:
    def test_info(self, program_file, capsys):
        assert main(["info", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "5 stencils" in out
        assert "arithmetic intensity" in out

    def test_analyze(self, program_file, capsys):
        assert main(["analyze", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "pipeline latency" in out
        assert "deadlock-free" in out
        assert "b3.b1" in out

    def test_codegen(self, program_file, tmp_path, capsys):
        out_dir = tmp_path / "gen"
        assert main(["codegen", str(program_file), "-o",
                     str(out_dir)]) == 0
        assert (out_dir / "lst1_device0.cl").exists()
        assert (out_dir / "host.cpp").exists()
        assert (out_dir / "reference.c").exists()

    def test_run_validates(self, program_file, capsys):
        assert main(["run", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "engine: batched" in out
        assert "validated against reference: True" in out

    def test_run_scalar_engine(self, program_file, capsys):
        assert main(["run", str(program_file), "--engine",
                     "scalar"]) == 0
        assert "engine: scalar" in capsys.readouterr().out

    def test_run_shape_override(self, program_file, capsys):
        assert main(["run", str(program_file), "--shape",
                     "4,8,8"]) == 0
        assert "validated against reference: True" in \
            capsys.readouterr().out

    def test_run_multi_device_fractional_rate(self, program_file,
                                              capsys):
        # Fractional link rates are drivable from the CLI and still
        # run on the batched engine.
        assert main(["run", str(program_file), "--devices", "2",
                     "--network-words-per-cycle", "0.5",
                     "--network-latency", "16"]) == 0
        out = capsys.readouterr().out
        assert "engine: batched (2 devices, contiguous placement, " \
               "link rate 0.5" in out
        assert "validated against reference: True" in out

    def test_run_rejects_bad_shape(self, program_file):
        with pytest.raises(SystemExit):
            main(["run", str(program_file), "--shape", "4x8x8"])

    def test_run_partition_auto(self, program_file, capsys):
        assert main(["run", str(program_file), "--devices", "2",
                     "--partition", "auto"]) == 0
        out = capsys.readouterr().out
        assert "auto placement" in out
        assert "validated against reference: True" in out

    def test_run_catalog_name(self, capsys):
        assert main(["run", "laplace2d", "--shape", "12,12"]) == 0
        assert "validated against reference: True" in \
            capsys.readouterr().out

    def test_run_catalog_alias(self, capsys):
        assert main(["run", "swe", "--shape", "10,10"]) == 0
        assert "validated against reference: True" in \
            capsys.readouterr().out

    def test_unknown_program_suggests_close_match(self, capsys):
        assert main(["info", "laplce2d"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "Traceback" not in err

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["info", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "could not read program" in err
        assert "Traceback" not in err


class TestListPrograms:
    def test_lists_catalog_with_aliases(self, capsys):
        assert main(["list-programs"]) == 0
        out = capsys.readouterr().out
        assert "horizontal_diffusion" in out
        assert "hdiff" in out
        assert "vertical_advection" in out
        assert "shallow_water" in out


class TestExploreCommand:
    def test_explore_writes_ranked_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(["explore", "--program", "laplace2d",
                     "--shape", "16,16", "--widths", "1,2,4",
                     "--output", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "explored laplace2d" in out
        assert f"wrote {report_path}" in out
        report = json.loads(report_path.read_text())
        assert report["program"] == "laplace2d"
        summary = report["summary"]
        assert summary["total_points"] == 3
        assert summary["simulated_points"] >= 1
        assert summary["best"]["simulated_cycles"] > 0
        ranks = [e["rank"] for e in report["entries"]
                 if e["rank"] is not None]
        assert sorted(ranks) == list(range(1, len(ranks) + 1))

    def test_explore_cache_file_makes_second_sweep_incremental(
            self, tmp_path, capsys):
        cache_path = tmp_path / "cache.json"
        report_path = tmp_path / "report.json"
        argv = ["explore", "--program", "laplace2d", "--shape",
                "16,16", "--widths", "1,2", "--cache",
                str(cache_path), "--output", str(report_path)]
        assert main(argv) == 0
        assert cache_path.exists()
        capsys.readouterr()
        assert main(argv) == 0
        assert "cache hits" in capsys.readouterr().out
        report = json.loads(report_path.read_text())
        assert report["cache_hits"] >= 1

    def test_explore_accepts_program_file(self, program_file,
                                          tmp_path):
        report_path = tmp_path / "report.json"
        assert main(["explore", "--program", str(program_file),
                     "--widths", "1,2", "--output",
                     str(report_path)]) == 0
        assert json.loads(report_path.read_text())["program"] == "lst1"

    def test_explore_process_backend(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(["explore", "--program", "laplace2d",
                     "--shape", "16,16", "--widths", "1,2",
                     "--backend", "process", "--workers", "2",
                     "--output", str(report_path)]) == 0
        assert "explored laplace2d" in capsys.readouterr().out
        report = json.loads(report_path.read_text())
        assert report["summary"]["simulated_points"] == 2
        assert report["summary"]["failed_points"] == 0

    def test_explore_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["explore", "--program", "laplace2d",
                  "--backend", "smoke-signals"])
        assert "invalid choice" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_on_empty_root(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"cache root: {tmp_path}" in out
        assert "explore result cache: absent" in out
        assert "service run dirs: 0" in out
        assert "quarantined files: 0" in out

    def test_stats_after_sweep_counts_entries(self, tmp_path,
                                              capsys):
        # conftest points REPRO_CACHE_DIR at a per-test directory, so
        # a default (persistent) sweep populates exactly that root.
        import os
        root = os.environ["REPRO_CACHE_DIR"]
        assert main(["explore", "--program", "laplace2d", "--shape",
                     "16,16", "--widths", "1,2", "--output",
                     str(tmp_path / "r.json")]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert f"cache root: {root}" in out
        assert "explore result cache: explore_cache.json " \
               "(2 entries" in out

    def test_prune_removes_quarantine_and_dead_run_dirs(
            self, tmp_path, capsys):
        from repro.service.journal import JOURNAL_NAME, new_run_dir
        (tmp_path / "explore_cache.json.corrupt-123").write_text("x")
        run_dir = new_run_dir(tmp_path / "service")
        (run_dir / JOURNAL_NAME).write_text("")
        (run_dir / "worker-1.pid").write_text("999999999")  # dead pid
        assert main(["cache", "prune", "--cache-dir",
                     str(tmp_path)]) == 0
        assert "pruned 2 path(s)" in capsys.readouterr().out
        assert not run_dir.exists()
        assert not any(".corrupt-" in p.name
                       for p in tmp_path.iterdir())

    def test_prune_keeps_live_run_dirs(self, tmp_path, capsys):
        import os
        from repro.service.journal import JOURNAL_NAME, new_run_dir
        run_dir = new_run_dir(tmp_path / "service")
        (run_dir / JOURNAL_NAME).write_text("")
        (run_dir / "worker-1.pid").write_text(str(os.getpid()))
        assert main(["cache", "prune", "--cache-dir",
                     str(tmp_path)]) == 0
        assert "kept" in capsys.readouterr().out
        assert run_dir.exists()

    def test_prune_all_removes_the_cache_itself(self, tmp_path,
                                                capsys):
        cache_file = tmp_path / "explore_cache.json"
        cache_file.write_text("{}")
        assert main(["cache", "prune", "--all", "--cache-dir",
                     str(tmp_path)]) == 0
        assert not cache_file.exists()

    def test_stats_lists_serve_artifacts(self, tmp_path, capsys):
        """A persisted sweep feeds the report store; a server run
        leaves the frontier-index snapshot and query log — ``cache
        stats`` surfaces all three."""
        from repro.serve import FrontierIndex, QueryLog
        assert main(["explore", "--program", "laplace2d", "--shape",
                     "16,16", "--widths", "1", "--output",
                     str(tmp_path / "r.json")]) == 0
        index, _ = FrontierIndex.warm_load()
        index.save_snapshot()
        QueryLog().record("best", "hit", query="laplace2d@16x16")
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "report store: 1 report(s)" in out
        assert "serve frontier index: frontier_index.json " \
               "(1 front(s)" in out
        assert "serve query log: query_log.jsonl (1 queries" in out

    def test_prune_cleans_serve_artifacts_keeps_reports(
            self, tmp_path, capsys):
        from repro.explore import iter_stored_reports
        from repro.serve import (
            FrontierIndex,
            QueryLog,
            query_log_path,
            snapshot_path,
        )
        assert main(["explore", "--program", "laplace2d", "--shape",
                     "16,16", "--widths", "1", "--output",
                     str(tmp_path / "r.json")]) == 0
        index, _ = FrontierIndex.warm_load()
        index.save_snapshot()
        QueryLog().record("best", "hit")
        assert main(["cache", "prune"]) == 0
        # Derived serve state goes; the report store survives plain
        # prune and goes with --all.
        assert not snapshot_path().exists()
        assert not query_log_path().exists()
        assert len(list(iter_stored_reports())) == 1
        assert main(["cache", "prune", "--all"]) == 0
        assert list(iter_stored_reports()) == []


class TestLinkRateOverrides:
    def test_run_with_per_link_rate(self, program_file, capsys):
        assert main(["run", str(program_file), "--devices", "2",
                     "--network-latency", "16",
                     "--network-link-rate", "b2:b4=1/2"]) == 0
        out = capsys.readouterr().out
        assert "link-rate overrides: b2->b4:b2=0.5" in out
        assert "validated against reference: True" in out

    def test_run_link_rate_slows_the_named_edge(self, program_file,
                                                capsys):
        argv = ["run", str(program_file), "--devices", "2",
                "--network-latency", "16"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--network-link-rate",
                            "b2:b4=0.25"]) == 0
        throttled = capsys.readouterr().out

        def cycles(text):
            for line in text.splitlines():
                if line.startswith("simulated "):
                    return int(line.split()[1])
            raise AssertionError(text)

        assert cycles(throttled) > cycles(plain)

    def test_run_rejects_bad_link_rate_spec(self, program_file,
                                            capsys):
        assert main(["run", str(program_file), "--devices", "2",
                     "--network-link-rate", "b2=0.5"]) == 2
        assert "link-rate" in capsys.readouterr().err
        assert main(["run", str(program_file), "--devices", "2",
                     "--network-link-rate", "nope:b4=0.5"]) == 2
        assert "matches no edge" in capsys.readouterr().err


class TestExploreAxes:
    def test_explore_transform_axes(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(["explore", "--program", "hdiff",
                     "--shape", "16,16,8", "--widths", "1",
                     "--strategy", "exhaustive",
                     "--fusion", "both", "--canonicalize", "on",
                     "--output", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "lowering:" in out
        report = json.loads(report_path.read_text())
        assert report["space"]["fusions"] == [False, True]
        assert report["space"]["canonicalizations"] == [True]
        fused = [e for e in report["entries"]
                 if e["point"]["fusion"] and e["simulated"]]
        assert fused

    def test_explore_link_rate_set_axis(self, program_file, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(["explore", "--program", str(program_file),
                     "--widths", "1", "--strategy", "exhaustive",
                     "--link-rate-set", "b2:b4=1/2",
                     "--output", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert [["b2:b4", 0.5]] in report["space"]["link_rate_sets"]

    def test_explore_persists_by_default_and_opt_out(
            self, tmp_path, capsys, monkeypatch):
        from repro.explore import ResultCache
        argv = ["explore", "--program", "laplace2d", "--shape",
                "12,12", "--widths", "1,2", "--output",
                str(tmp_path / "r.json")]
        assert main(argv) == 0
        assert ResultCache.default_path().exists()
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache hits" in out
        report = json.loads((tmp_path / "r.json").read_text())
        assert report["cache_hits"] >= 1
        ResultCache.default_path().unlink()
        assert main(argv + ["--no-cache-persist"]) == 0
        assert not ResultCache.default_path().exists()

    def test_run_rejects_nonfinite_link_rate(self, program_file,
                                             capsys):
        for bad in ("nan", "inf", "1/0"):
            assert main(["run", str(program_file), "--devices", "2",
                         "--network-link-rate", f"b2:b4={bad}"]) == 2
            assert "link rate" in capsys.readouterr().err

    def test_explore_accepts_resilience_flags(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(["explore", "--program", "laplace2d",
                     "--shape", "12,12", "--widths", "1,2",
                     "--deadlock-window", "512",
                     "--point-timeout", "60",
                     "--checkpoint-every", "1",
                     "--output", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["summary"]["failed_points"] == 0

    def test_explicit_cache_wins_over_persist_opt_out(self, tmp_path):
        cache_path = tmp_path / "mine.json"
        argv = ["explore", "--program", "laplace2d", "--shape",
                "12,12", "--widths", "1", "--cache", str(cache_path),
                "--no-cache-persist", "--output",
                str(tmp_path / "r.json")]
        assert main(argv) == 0
        assert cache_path.exists()
        report = json.loads((tmp_path / "r.json").read_text())
        assert report["cache_hits"] == 0
        assert main(argv) == 0
        report = json.loads((tmp_path / "r.json").read_text())
        assert report["cache_hits"] > 0


class TestFaultFlags:
    def test_run_with_unit_stall_reports_faults(self, program_file,
                                                capsys):
        argv = ["run", str(program_file)]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--unit-stall", "b2@100:164"]) == 0
        faulted = capsys.readouterr().out
        assert "injected faults:" in faulted
        assert "unit b2: 64 injected stall cycles" in faulted
        assert "validated against reference: True" in faulted

        def cycles(text):
            for line in text.splitlines():
                if line.startswith("simulated "):
                    return int(line.split()[1])
            raise AssertionError(text)

        assert cycles(faulted) > cycles(plain)

    def test_run_with_link_fault(self, program_file, capsys):
        assert main(["run", str(program_file), "--devices", "2",
                     "--network-latency", "16",
                     "--link-fault", "b2:b4@50:150"]) == 0
        out = capsys.readouterr().out
        assert "injected faults:" in out
        assert "100 outage cycles" in out
        assert "validated against reference: True" in out

    def test_run_rejects_bad_fault_specs(self, program_file, capsys):
        assert main(["run", str(program_file),
                     "--unit-stall", "b2"]) == 2
        assert "invalid unit-stall spec" in capsys.readouterr().err
        assert main(["run", str(program_file),
                     "--link-fault", "b2:b4@9:3"]) == 2
        assert "window end must be > start" in capsys.readouterr().err
        assert main(["run", str(program_file),
                     "--unit-stall", "nope@10:20"]) == 2
        assert "names no unit" in capsys.readouterr().err

    def test_run_deadlock_exits_2_with_forensics(self, tmp_path,
                                                 capsys):
        # A fault window longer than the deadlock window wedges the
        # machine unless the detector is fault-aware; shrinking the
        # window while stalling the only stencil forces a true wedge
        # never -- so instead check the flag is accepted and a healthy
        # run still validates under a tight window.
        assert main(["run", "laplace2d", "--shape", "12,12",
                     "--deadlock-window", "64"]) == 0
        assert "validated against reference: True" in \
            capsys.readouterr().out
