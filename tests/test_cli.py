"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from util import lst1_program, lst1_spec


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.json"
    path.write_text(json.dumps(lst1_spec(shape=(8, 8, 8))))
    return path


class TestCLI:
    def test_info(self, program_file, capsys):
        assert main(["info", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "5 stencils" in out
        assert "arithmetic intensity" in out

    def test_analyze(self, program_file, capsys):
        assert main(["analyze", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "pipeline latency" in out
        assert "deadlock-free" in out
        assert "b3.b1" in out

    def test_codegen(self, program_file, tmp_path, capsys):
        out_dir = tmp_path / "gen"
        assert main(["codegen", str(program_file), "-o",
                     str(out_dir)]) == 0
        assert (out_dir / "lst1_device0.cl").exists()
        assert (out_dir / "host.cpp").exists()
        assert (out_dir / "reference.c").exists()

    def test_run_validates(self, program_file, capsys):
        assert main(["run", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "engine: batched" in out
        assert "validated against reference: True" in out

    def test_run_scalar_engine(self, program_file, capsys):
        assert main(["run", str(program_file), "--engine",
                     "scalar"]) == 0
        assert "engine: scalar" in capsys.readouterr().out

    def test_run_shape_override(self, program_file, capsys):
        assert main(["run", str(program_file), "--shape",
                     "4,8,8"]) == 0
        assert "validated against reference: True" in \
            capsys.readouterr().out

    def test_run_multi_device_fractional_rate(self, program_file,
                                              capsys):
        # Fractional link rates are drivable from the CLI and still
        # run on the batched engine.
        assert main(["run", str(program_file), "--devices", "2",
                     "--network-words-per-cycle", "0.5",
                     "--network-latency", "16"]) == 0
        out = capsys.readouterr().out
        assert "engine: batched (2 devices, link rate 0.5" in out
        assert "validated against reference: True" in out

    def test_run_rejects_bad_shape(self, program_file):
        with pytest.raises(SystemExit):
            main(["run", str(program_file), "--shape", "4x8x8"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_file(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(FileNotFoundError):
            main(["info", str(missing)])
