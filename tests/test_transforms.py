"""Unit tests for the transformations: fusion, fission, nest_dim,
canonicalization, and extraction."""

import numpy as np
import pytest

from repro.analysis import analyze_buffers
from repro.core import StencilProgram
from repro.errors import TransformationError
from repro.expr import parse
from repro.programs import horizontal_diffusion
from repro.run import run_reference
from repro.sdfg import build_sdfg
from repro.transforms import (
    aggressive_fusion,
    can_fission,
    can_fuse,
    canonicalize,
    extract_program,
    fission,
    fold_program,
    fuse,
    fusion_candidates,
    nest_dim,
    shift_expr,
    substitute_field,
)
from util import lst1_program, random_inputs


def _two_stage(code_s, code_t, shape=(8, 8)):
    return StencilProgram.from_json({
        "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
        "outputs": ["t"],
        "shape": list(shape),
        "program": {
            "s": {"code": code_s, "boundary_condition": "shrink"},
            "t": {"code": code_t, "boundary_condition": "shrink"},
        },
    })


def _valid_overlap(a, b):
    return tuple(slice(max(lo1, lo2), min(hi1, hi2))
                 for (lo1, hi1), (lo2, hi2) in zip(a.valid, b.valid))


class TestShift:
    def test_shift_offsets(self):
        node = shift_expr(parse("a[i-1,j,k] + b[i,k]"), {"i": 2})
        assert str(node) == "(a[i+1, j, k] + b[i+2, k])"

    def test_shift_missing_dim_noop(self):
        node = shift_expr(parse("b[i,k]"), {"j": 5})
        assert str(node) == "b[i, k]"

    def test_substitute_inlines_shifted(self):
        target = parse("2.0 * p[i-1,j]")
        replacement = parse("a[i,j] + a[i,j+1]")
        result = substitute_field(target, "p", replacement, {})
        assert str(result) == "(2.0 * (a[i-1, j] + a[i-1, j+1]))"


class TestFusionHeuristics:
    def test_single_consumer_center_read_fusable(self):
        program = _two_stage("a[i,j-1] + a[i,j+1]", "2.0*s[i,j]")
        ok, _ = can_fuse(program, "s", "t")
        assert ok

    def test_output_not_fusable(self):
        program = lst1_program()
        ok, reason = can_fuse(program, "b4", "b4")
        assert not ok

    def test_multi_consumer_rejected(self):
        program = lst1_program()
        ok, reason = can_fuse(program, "b0", "b1")
        assert not ok
        assert "one consumer" in reason

    def test_multi_offset_rejected(self):
        program = _two_stage("a[i,j] * 2.0", "s[i,j-1] + s[i,j+1]")
        ok, reason = can_fuse(program, "s", "t")
        assert not ok
        assert "offsets" in reason

    def test_mismatched_boundaries_rejected(self):
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
            "outputs": ["t"],
            "shape": [8, 8],
            "program": {
                "s": {"code": "a[i,j-1] + a[i,j+1]",
                      "boundary_condition": {
                          "a": {"type": "constant", "value": 0}}},
                "t": {"code": "2.0*s[i,j]",
                      "boundary_condition": "shrink"},
            },
        })
        ok, reason = can_fuse(program, "s", "t")
        assert not ok

    def test_fusion_candidates_lst1(self):
        # b1 feeds only b3 but at offsets i±1 -> rejected; b3 feeds only
        # b4 at the center -> accepted.
        candidates = fusion_candidates(lst1_program())
        assert ("b3", "b4") in candidates
        assert ("b1", "b3") not in candidates


class TestFusionSemantics:
    def test_semantics_preserved(self):
        program = _two_stage("a[i,j-1] + a[i,j+1]", "2.0*s[i-1,j]")
        inputs = random_inputs(program)
        before = run_reference(program, inputs)["t"]
        fused = fuse(program, "s", "t")
        after = run_reference(fused, inputs)["t"]
        window = _valid_overlap(before, after)
        np.testing.assert_allclose(before.data[window],
                                   after.data[window], rtol=1e-5)

    def test_reduces_stencil_count(self):
        program = _two_stage("a[i,j] + 1.0", "2.0*s[i,j]")
        assert len(fuse(program, "s", "t").stencils) == 1

    def test_unfusable_raises(self):
        program = _two_stage("a[i,j] * 2.0", "s[i,j-1] + s[i,j+1]")
        with pytest.raises(TransformationError):
            fuse(program, "s", "t")

    def test_aggressive_fusion_hdiff(self):
        program = horizontal_diffusion(shape=(16, 16, 8))
        fused = aggressive_fusion(program)
        assert len(fused.stencils) < len(program.stencils)
        assert fusion_candidates(fused) == []
        inputs = random_inputs(program, seed=4)
        for name in inputs:
            inputs[name] = inputs[name].astype(np.float32) * 0.1 + 1.0
        before = run_reference(program, inputs)["u_out"]
        after = run_reference(fused, inputs)["u_out"]
        window = _valid_overlap(before, after)
        np.testing.assert_allclose(before.data[window],
                                   after.data[window], rtol=1e-4)

    def test_chain_fusion_reduces_latency(self):
        # Fusing center-read chained stencils merges init phases.
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
            "outputs": ["t"],
            "shape": [16, 16],
            "program": {
                "s": {"code": "a[i-1,j] + a[i+1,j]",
                      "boundary_condition": "shrink"},
                "t": {"code": "s[i,j] * 0.5",
                      "boundary_condition": "shrink"},
            },
        })
        fused = aggressive_fusion(program)
        assert analyze_buffers(fused).pipeline_latency <= \
            analyze_buffers(program).pipeline_latency


class TestFission:
    def test_roundtrip_with_fusion(self):
        program = _two_stage("(a[i,j-1] + a[i,j+1]) * (a[i,j] + 1.0)",
                             "s[i,j] * 2.0")
        split = fission(program, "s")
        assert set(split.stencil_names) == {"s__l", "s__r", "s", "t"}
        inputs = random_inputs(program)
        before = run_reference(program, inputs)["t"]
        after = run_reference(split, inputs)["t"]
        window = _valid_overlap(before, after)
        np.testing.assert_allclose(before.data[window],
                                   after.data[window], rtol=1e-5)

    def test_leaf_operands_rejected(self):
        program = _two_stage("a[i,j-1] + a[i,j+1]", "s[i,j] * 2.0")
        ok, reason = can_fission(program, "s")
        assert not ok

    def test_leaf_side_stays_inline(self):
        program = _two_stage("2.0 * (a[i,j] + a[i,j-1])", "s[i,j] + 0.0")
        split = fission(program, "s")
        # Only the compound right side is outlined.
        assert "s__r" in split.stencil_names
        assert "s__l" not in split.stencil_names

    def test_boolean_top_rejected(self):
        program = _two_stage("a[i,j] + 1.0", "s[i,j] > 0 ? 1.0 : 0.0")
        ok, reason = can_fission(program, "t")
        assert not ok


class TestNestDim:
    def test_shape_and_rename(self):
        program = _two_stage("a[i,j-1] + a[i,j+1]", "s[i-1,j] * 2.0")
        nested = nest_dim(program, 5)
        assert nested.shape == (5, 8, 8)
        assert nested.stencil("s").code == "(a[i, j, k-1] + a[i, j, k+1])"
        assert nested.stencil("t").code == "(s[i, j-1, k] * 2.0)"

    def test_broadcast_inputs_keep_shape(self):
        program = StencilProgram.from_json({
            "inputs": {
                "a": {"dtype": "float32", "dims": ["i", "j"]},
                "c": {"dtype": "float32", "dims": ["j"]},
            },
            "outputs": ["s"],
            "shape": [8, 8],
            "program": {"s": {"code": "a[i,j] * c[j]",
                              "boundary_condition": "shrink"}},
        })
        nested = nest_dim(program, 4, broadcast_inputs=["c"])
        assert nested.inputs["a"].dims == ("i", "j", "k")
        assert nested.inputs["c"].dims == ("k",)

    def test_semantics_slicewise(self):
        program = _two_stage("a[i,j-1] + a[i,j+1]", "s[i,j] * 2.0")
        inputs = random_inputs(program)
        flat = run_reference(program, inputs)["t"]
        nested = nest_dim(program, 3)
        stacked = np.broadcast_to(inputs["a"], (3, 8, 8)).copy()
        result = run_reference(nested, {"a": stacked})["t"]
        np.testing.assert_allclose(result.data[1], flat.data,
                                   rtol=1e-5, equal_nan=True)

    def test_3d_rejected(self):
        with pytest.raises(TransformationError, match="already"):
            nest_dim(lst1_program(), 4)


class TestCanonicalize:
    def test_fold_program(self):
        program = _two_stage("a[i,j] * (2.0 - 1.0) + 0.0",
                             "s[i,j] + (3 - 3)")
        folded = fold_program(program)
        assert folded.stencil("s").code == "a[i, j]"

    def test_canonicalize_folds_and_fuses(self):
        program = _two_stage("a[i,j] + 0.0", "s[i,j] * 1.0")
        canonical = canonicalize(program)
        assert len(canonical.stencils) == 1

    def test_extract_roundtrip(self):
        program = lst1_program()
        extracted = extract_program(build_sdfg(program))
        assert set(extracted.stencil_names) == set(program.stencil_names)
        assert extracted.shape == program.shape
        assert set(extracted.inputs) == set(program.inputs)
        assert set(extracted.outputs) == {"b4"}

    def test_extract_requires_library_nodes(self):
        from repro.sdfg import SDFG
        empty = SDFG("empty")
        empty.add_state("main")
        with pytest.raises(TransformationError, match="no stencil"):
            extract_program(empty)
