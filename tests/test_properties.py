"""Property-based tests (hypothesis) for the core invariants.

These encode DESIGN.md Sec. 5: round-trips, folding soundness, buffer
algebra, delay-buffer structure, and — most importantly — functional
equivalence of the cycle-level simulator and the sequential reference
on randomly generated stencil programs.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_buffers, certify_analysis
from repro.core import StencilProgram
from repro.core.fields import flatten_offset
from repro.expr import (
    evaluate_scalar,
    fold,
    parse,
    unparse,
)
from repro.expr.ast_nodes import (
    BinaryOp,
    Call,
    Expr,
    FieldAccess,
    Literal,
    Ternary,
    UnaryOp,
)
from repro.run import run_reference
from repro.simulator import simulate
from repro.transforms import shift_expr

# -- strategies ---------------------------------------------------------------

_INDEX_NAMES = ("i", "j", "k")


def _literals():
    return st.one_of(
        st.integers(min_value=-8, max_value=8).map(Literal),
        st.floats(min_value=-4.0, max_value=4.0, allow_nan=False,
                  width=32).map(lambda x: Literal(round(float(x), 3))),
    )


def _accesses(fields=("a", "b"), rank=2):
    dims = _INDEX_NAMES[:rank]
    return st.builds(
        FieldAccess,
        st.sampled_from(fields),
        st.tuples(*(st.integers(-2, 2) for _ in range(rank))),
        st.just(dims),
    )


def _expressions(rank=2, max_depth=3):
    base = st.one_of(_literals(), _accesses(rank=rank))

    def extend(children):
        return st.one_of(
            st.builds(BinaryOp, st.sampled_from(["+", "-", "*"]),
                      children, children),
            # The parser folds negated literals, so only negate
            # non-literal operands (parseable trees never contain
            # UnaryOp over Literal).
            children.map(lambda x: Literal(-x.value)
                         if isinstance(x, Literal) else UnaryOp("-", x)),
            st.builds(lambda c, t, o: Ternary(
                BinaryOp(">", c, Literal(0)), t, o),
                children, children, children),
            st.builds(lambda x: Call("max", (x, Literal(0))), children),
        )

    return st.recursive(base, extend, max_leaves=8)


# -- expression properties -----------------------------------------------------


class TestExpressionProperties:
    @given(_expressions())
    @settings(max_examples=60, deadline=None)
    def test_unparse_parse_roundtrip(self, node):
        assert parse(unparse(node)) == node

    @given(_expressions())
    @settings(max_examples=60, deadline=None)
    def test_fold_idempotent(self, node):
        folded = fold(node)
        assert fold(folded) == folded

    @given(_expressions(rank=0))
    @settings(max_examples=60, deadline=None)
    def test_fold_preserves_closed_value(self, node):
        # rank=0 accesses never occur: the strategy only yields literals
        # when rank is 0 via accesses of empty tuple; guard anyway.
        assume(not any(isinstance(n, FieldAccess) for n in node.walk()))
        try:
            original = evaluate_scalar(node)
        except ZeroDivisionError:
            assume(False)
        folded_value = evaluate_scalar(fold(node))
        assert math.isclose(float(original), float(folded_value),
                            rel_tol=1e-9, abs_tol=1e-9)

    @given(_expressions(), st.integers(-3, 3), st.integers(-3, 3))
    @settings(max_examples=40, deadline=None)
    def test_shift_composes(self, node, da, db):
        one = shift_expr(shift_expr(node, {"i": da}), {"i": db})
        both = shift_expr(node, {"i": da + db})
        assert one == both

    @given(_expressions())
    @settings(max_examples=40, deadline=None)
    def test_shift_zero_is_identity(self, node):
        assert shift_expr(node, {}) == node


class TestFlattenProperties:
    @given(st.tuples(st.integers(-4, 4), st.integers(-4, 4),
                     st.integers(-4, 4)),
           st.tuples(st.integers(-4, 4), st.integers(-4, 4),
                     st.integers(-4, 4)))
    @settings(max_examples=60, deadline=None)
    def test_flatten_is_linear(self, a, b):
        domain = (16, 16, 16)
        total = tuple(x + y for x, y in zip(a, b))
        assert flatten_offset(total, domain) == \
            flatten_offset(a, domain) + flatten_offset(b, domain)

    @given(st.tuples(st.integers(-3, 3), st.integers(-3, 3)))
    @settings(max_examples=40, deadline=None)
    def test_flatten_matches_numpy_ravel(self, offset):
        domain = (8, 8)
        base = (4, 4)
        position = tuple(b + o for b, o in zip(base, offset))
        expected = (np.ravel_multi_index(position, domain)
                    - np.ravel_multi_index(base, domain))
        assert flatten_offset(offset, domain) == expected


# -- random-program properties --------------------------------------------------


def _random_program(draw):
    """Build a small random 2D stencil program (shrink boundaries)."""
    rank = 2
    shape = (8, 8)
    num_stencils = draw(st.integers(1, 4))
    names = ["inp"]
    program = {}
    for n in range(num_stencils):
        name = f"s{n}"
        # Each stencil reads 1-2 existing containers at random offsets.
        sources = draw(st.lists(st.sampled_from(names), min_size=1,
                                max_size=2))
        terms = []
        for source in sources:
            di = draw(st.integers(-1, 1))
            dj = draw(st.integers(-1, 1))
            sub_i = f"i{'+' if di >= 0 else '-'}{abs(di)}" if di else "i"
            sub_j = f"j{'+' if dj >= 0 else '-'}{abs(dj)}" if dj else "j"
            terms.append(f"{source}[{sub_i},{sub_j}]")
        coeff = draw(st.sampled_from(["0.5", "1.0", "2.0"]))
        program[name] = {
            "code": f"{coeff}*(" + " + ".join(terms) + ")",
            "boundary_condition": "shrink",
        }
        names.append(name)
    return StencilProgram.from_json({
        "name": "random",
        "inputs": {"inp": {"dtype": "float32", "dims": ["i", "j"]}},
        "outputs": [f"s{num_stencils - 1}"],
        "shape": list(shape),
        "program": program,
    })


class TestProgramProperties:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_simulator_matches_reference(self, data):
        """The headline invariant: hardware simulation == reference."""
        program = _random_program(data.draw)
        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        inputs = {"inp": rng.random(program.shape, dtype=np.float32)}
        reference = run_reference(program, inputs)
        result = simulate(program, inputs)
        out = program.outputs[0]
        expected = reference[out]
        got = result.outputs[out][expected.valid_slice]
        np.testing.assert_allclose(got, expected.valid_view,
                                   rtol=1e-5, atol=1e-6,
                                   equal_nan=True)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_delay_buffers_well_formed(self, data):
        """Every node has a zero-size in-edge; capacities certify."""
        program = _random_program(data.draw)
        analysis = analyze_buffers(program)
        certify_analysis(analysis)
        by_dst = {}
        for (src, dst, _d), buffer in analysis.delay_buffers.items():
            by_dst.setdefault(dst, []).append(buffer.size)
        for dst, sizes in by_dst.items():
            assert min(sizes) == 0, dst

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_model_bounds_simulation(self, data):
        """Eq. 1 upper-bounds the stall-free machine; N/W lower-bounds
        it."""
        program = _random_program(data.draw)
        inputs = {"inp": np.ones(program.shape, dtype=np.float32)}
        result = simulate(program, inputs)
        assert result.cycles <= result.expected_cycles
        assert result.cycles >= program.num_cells

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_vectorization_functional_invariance(self, data):
        """W changes timing, never results."""
        program = _random_program(data.draw)
        rng = np.random.default_rng(7)
        inputs = {"inp": rng.random(program.shape, dtype=np.float32)}
        scalar = simulate(program, inputs)
        vector = simulate(program.with_vectorization(4), inputs)
        out = program.outputs[0]
        np.testing.assert_allclose(
            scalar.outputs[out], vector.outputs[out],
            rtol=1e-6, equal_nan=True)
        assert vector.cycles < scalar.cycles

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_json_roundtrip_random(self, data):
        program = _random_program(data.draw)
        again = StencilProgram.from_json_string(program.to_json_string())
        assert again.to_json() == program.to_json()


class TestBufferAlgebraProperties:
    @given(st.lists(st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
                    min_size=2, max_size=6, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_internal_buffer_span(self, offsets):
        """Buffer size = extreme distance + W, regardless of middles."""
        from repro.analysis import internal_buffers
        code = " + ".join(
            f"a[{_sub('i', di)},{_sub('j', dj)}]" for di, dj in offsets)
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
            "outputs": ["s"],
            "shape": [16, 16],
            "program": {"s": {"code": code,
                              "boundary_condition": "shrink"}},
        })
        buffering = internal_buffers(program, program.stencil("s"))
        flats = sorted(flatten_offset(off, (16, 16)) for off in offsets)
        span = flats[-1] - flats[0]
        if span == 0:
            assert buffering.buffers == {}
        else:
            assert buffering.buffers["a"].size == span + 1

    @given(st.lists(st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
                    min_size=2, max_size=5, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_extremes_determine_size(self, offsets):
        """Adding an access between the extremes never grows the buffer."""
        from repro.analysis import internal_buffers

        def build(offs):
            code = " + ".join(
                f"a[{_sub('i', di)},{_sub('j', dj)}]" for di, dj in offs)
            program = StencilProgram.from_json({
                "inputs": {"a": {"dtype": "float32",
                                 "dims": ["i", "j"]}},
                "outputs": ["s"],
                "shape": [16, 16],
                "program": {"s": {"code": code,
                                  "boundary_condition": "shrink"}},
            })
            buffering = internal_buffers(program, program.stencil("s"))
            buffer = buffering.buffers.get("a")
            return buffer.size if buffer else 0

        with_center = build(list(offsets) + [(0, 0)])
        flats = [flatten_offset(off, (16, 16)) for off in offsets]
        if min(flats) <= 0 <= max(flats):
            assert with_center == build(offsets)
        else:
            assert with_center >= build(offsets)


def _sub(name, off):
    if off == 0:
        return name
    return f"{name}{'+' if off > 0 else '-'}{abs(off)}"
