"""Unit tests for internal-buffer analysis (Sec. IV-A)."""

import pytest

from repro.analysis import internal_buffers, program_internal_buffers
from repro.core import StencilProgram
from util import lst1_program


def _one_stencil(code, shape=(32, 32, 32), vectorization=1,
                 dims=("i", "j", "k")):
    program = StencilProgram.from_json({
        "inputs": {"a": {"dtype": "float32", "dims": list(dims)},
                   "b": {"dtype": "float32", "dims": list(dims)}},
        "outputs": ["s"],
        "shape": list(shape),
        "vectorization": vectorization,
        "program": {"s": {"code": code, "boundary_condition": "shrink"}},
    })
    return program, program.stencil("s")


class TestSizes:
    def test_paper_row_example(self):
        # a[0,1,0] and a[0,-1,0] in 32^3: 2I + W = 65 elements.
        program, stencil = _one_stencil("a[i,j-1,k] + a[i,j+1,k]")
        buffering = internal_buffers(program, stencil)
        assert buffering.buffers["a"].size == 2 * 32 + 1

    def test_paper_slice_example(self):
        # b[0,0,0] and b[1,0,0]: 2D slice, IJ + W.
        program, stencil = _one_stencil("a[i,j,k] + a[i+1,j,k]")
        buffering = internal_buffers(program, stencil)
        assert buffering.buffers["a"].size == 32 * 32 + 1

    def test_vectorized_adds_width(self):
        program, stencil = _one_stencil("a[i,j-1,k] + a[i,j+1,k]",
                                        vectorization=4)
        buffering = internal_buffers(program, stencil)
        assert buffering.buffers["a"].size == 2 * 32 + 4

    def test_single_access_no_buffer(self):
        program, stencil = _one_stencil("a[i,j,k] * 2")
        buffering = internal_buffers(program, stencil)
        assert buffering.buffers == {}
        assert buffering.init_elements == 0

    def test_intermediate_accesses_do_not_grow_buffer(self):
        p1, s1 = _one_stencil("a[i,j-1,k] + a[i,j+1,k]")
        p2, s2 = _one_stencil("a[i,j-1,k] + a[i,j,k] + a[i,j+1,k]")
        size1 = internal_buffers(p1, s1).buffers["a"].size
        size2 = internal_buffers(p2, s2).buffers["a"].size
        assert size1 == size2
        # ... but they do add tap points.
        assert internal_buffers(p2, s2).buffers["a"].num_taps == 3

    def test_taps_relative_to_lowest(self):
        program, stencil = _one_stencil(
            "a[i,j-1,k] + a[i,j,k] + a[i,j+1,k]")
        taps = internal_buffers(program, stencil).buffers["a"].taps
        assert taps == (0, 32, 64)

    def test_2d_iteration_space(self):
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
            "outputs": ["s"],
            "shape": [64, 64],
            "program": {"s": {"code": "a[i-1,j] + a[i+1,j]",
                              "boundary_condition": "shrink"}},
        })
        buffering = internal_buffers(program, program.stencil("s"))
        assert buffering.buffers["a"].size == 2 * 64 + 1


class TestSchedule:
    def test_init_is_max_buffer(self):
        program, stencil = _one_stencil(
            "a[i,j-1,k] + a[i,j+1,k] + b[i-1,j,k] + b[i+1,j,k]")
        buffering = internal_buffers(program, stencil)
        size_a = buffering.buffers["a"].size   # 2 rows
        size_b = buffering.buffers["b"].size   # 2 slices
        assert size_b > size_a
        assert buffering.init_elements == size_b

    def test_fill_start_synchronization(self):
        program, stencil = _one_stencil(
            "a[i,j-1,k] + a[i,j+1,k] + b[i-1,j,k] + b[i+1,j,k]")
        buffering = internal_buffers(program, stencil)
        # The largest buffer starts immediately; the smaller is delayed.
        assert buffering.fill_start["b"] == 0
        assert buffering.fill_start["a"] == (buffering.buffers["b"].size
                                             - buffering.buffers["a"].size)

    def test_init_cycles_rounds_up(self):
        program, stencil = _one_stencil("a[i,j-1,k] + a[i,j+1,k]",
                                        vectorization=4)
        buffering = internal_buffers(program, stencil)
        # 68 elements / W=4 = 17 words.
        assert buffering.init_cycles(4) == 17


class TestProgramLevel:
    def test_lst1_buffers(self):
        program = lst1_program(shape=(32, 32, 32))
        per_stencil = program_internal_buffers(program)
        # Only b3 accesses a field at multiple offsets (b1 at i±1).
        assert per_stencil["b3"].buffers["b1"].size == 2 * 32 * 32 + 1
        for name in ("b0", "b1", "b2", "b4"):
            assert per_stencil[name].buffers == {}

    def test_bytes(self):
        program = lst1_program(shape=(32, 32, 32))
        buf = program_internal_buffers(program)["b3"].buffers["b1"]
        assert buf.bytes(4) == buf.size * 4
