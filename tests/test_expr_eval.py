"""Unit tests for the NumPy evaluator and type inference."""

import numpy as np
import pytest

from repro.core import dtype, float32, float64, int32
from repro.errors import StencilFlowError, TypeCheckError
from repro.expr import evaluate, evaluate_scalar, infer_type, parse
from repro.expr.ast_nodes import FieldAccess


def _resolver(arrays):
    def resolve(access: FieldAccess):
        return arrays[(access.field, access.offsets)]
    return resolve


class TestEvaluate:
    def test_arithmetic(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([4.0, 5.0, 6.0])
        node = parse("x[i] * 2 + y[i]")
        out = evaluate(node, _resolver({("x", (0,)): a, ("y", (0,)): b}))
        np.testing.assert_allclose(out, [6.0, 9.0, 12.0])

    def test_ternary_uses_where(self):
        a = np.array([-1.0, 0.0, 2.0])
        node = parse("x[i] > 0 ? x[i] : 0")
        out = evaluate(node, _resolver({("x", (0,)): a}))
        np.testing.assert_allclose(out, [0.0, 0.0, 2.0])

    def test_math_functions(self):
        a = np.array([1.0, 4.0, 9.0])
        node = parse("sqrt(x[i])")
        out = evaluate(node, _resolver({("x", (0,)): a}))
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])

    def test_min_max(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, 2.0])
        arrays = {("x", (0,)): a, ("y", (0,)): b}
        np.testing.assert_allclose(
            evaluate(parse("min(x[i], y[i])"), _resolver(arrays)), [1, 2])
        np.testing.assert_allclose(
            evaluate(parse("max(x[i], y[i])"), _resolver(arrays)), [3, 5])

    def test_logical_ops(self):
        a = np.array([1.0, -1.0, 2.0])
        node = parse("(x[i] > 0 && x[i] < 1.5) ? 1 : 0")
        out = evaluate(node, _resolver({("x", (0,)): a}))
        np.testing.assert_allclose(out, [1, 0, 0])

    def test_unary(self):
        a = np.array([1.0, -2.0])
        out = evaluate(parse("-x[i]"), _resolver({("x", (0,)): a}))
        np.testing.assert_allclose(out, [-1.0, 2.0])

    def test_index_grids(self):
        node = parse("i * 10 + j")
        grids = {"i": np.array([[0, 0], [1, 1]]),
                 "j": np.array([[0, 1], [0, 1]])}
        out = evaluate(node, lambda a: 0, grids)
        np.testing.assert_array_equal(out, [[0, 1], [10, 11]])

    def test_missing_index_grid(self):
        with pytest.raises(StencilFlowError, match="no index grid"):
            evaluate(parse("i + 1"), lambda a: 0, {})


class TestEvaluateScalar:
    def test_closed_expression(self):
        assert evaluate_scalar(parse("2 * 3 + 1")) == 7

    def test_with_bindings(self):
        assert evaluate_scalar(parse("i * 2"), {"i": 5}) == 10

    def test_field_read_rejected(self):
        with pytest.raises(StencilFlowError, match="not closed"):
            evaluate_scalar(parse("a[i]"))


class TestTypeInference:
    def test_field_plus_literal(self):
        assert infer_type(parse("a[i] + 1"), {"a": float32}) is float32

    def test_float_literal_weak(self):
        assert infer_type(parse("0.5 * a[i]"), {"a": float32}) is float32

    def test_widening(self):
        t = infer_type(parse("a[i] + b[i]"),
                       {"a": float32, "b": float64})
        assert t is float64

    def test_comparison_is_bool(self):
        t = infer_type(parse("a[i] > 0"), {"a": float32})
        assert t.kind == "bool"

    def test_bool_arithmetic_rejected(self):
        with pytest.raises(TypeCheckError, match="arithmetic"):
            infer_type(parse("(a[i] > 0) + 1"), {"a": float32})

    def test_undeclared_field(self):
        with pytest.raises(TypeCheckError, match="undeclared"):
            infer_type(parse("zz[i]"), {})

    def test_integer_division_is_float(self):
        t = infer_type(parse("a[i] / 2"), {"a": int32})
        assert t.is_float

    def test_ternary_promotes(self):
        t = infer_type(parse("a[i] > 0 ? b[i] : 1"),
                       {"a": float32, "b": float64})
        assert t is float64

    def test_sqrt_of_int_is_float(self):
        t = infer_type(parse("sqrt(a[i])"), {"a": int32})
        assert t.is_float

    def test_index_var_is_int(self):
        assert infer_type(parse("i"), {}) is int32
