"""Shared test helpers: canonical programs and generators."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import StencilProgram


def lst1_spec(shape=(8, 8, 8)) -> dict:
    """The paper's Lst. 1 example program (with the typo fixed)."""
    return {
        "name": "lst1",
        "inputs": {
            "a0": {"dtype": "float32", "dims": ["i", "j", "k"]},
            "a1": {"dtype": "float32", "dims": ["i", "j", "k"]},
            "a2": {"dtype": "float32", "dims": ["i", "k"]},
        },
        "outputs": ["b4"],
        "shape": list(shape),
        "program": {
            "b0": {"code": "a0[i,j,k] + a1[i,j,k]",
                   "boundary_condition": {
                       "a0": {"type": "constant", "value": 1},
                       "a1": {"type": "copy"}}},
            "b1": {"code": "0.5*(b0[i,j,k] + a2[i,k])",
                   "boundary_condition": "shrink"},
            "b2": {"code": "0.5*(b0[i,j,k] - a2[i,k])",
                   "boundary_condition": "shrink"},
            "b3": {"code": "b1[i-1,j,k] + b1[i+1,j,k]",
                   "boundary_condition": "shrink"},
            "b4": {"code": "b2[i,j,k] + b3[i,j,k]",
                   "boundary_condition": "shrink"},
        },
    }


def lst1_program(shape=(8, 8, 8)) -> StencilProgram:
    return StencilProgram.from_json(lst1_spec(shape))


def lst1_inputs(shape=(8, 8, 8), seed=0) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    i, j, k = shape
    return {
        "a0": rng.random((i, j, k), dtype=np.float32),
        "a1": rng.random((i, j, k), dtype=np.float32),
        "a2": rng.random((i, k), dtype=np.float32),
    }


def diamond_program(shape=(4, 8, 8), long_branch=3) -> StencilProgram:
    """A fork-join diamond: a -> s0 -> {fast, slow chain} -> join.

    The slow branch is a chain of ``long_branch`` j-offset stencils, each
    adding init delay, so the fast edge into the join needs a nonzero
    delay buffer. This is the Fig. 4 deadlock shape.
    """
    program = {
        "s0": {"code": "a[i,j,k] + 1", "boundary_condition": "shrink"},
    }
    prev = "s0"
    for n in range(long_branch):
        name = f"slow{n}"
        program[name] = {
            "code": f"{prev}[i,j-1,k] + {prev}[i,j+1,k]",
            "boundary_condition": "shrink",
        }
        prev = name
    program["join"] = {
        "code": f"s0[i,j,k] + {prev}[i,j,k]",
        "boundary_condition": "shrink",
    }
    return StencilProgram.from_json({
        "name": "diamond",
        "inputs": {"a": {"dtype": "float32", "dims": ["i", "j", "k"]}},
        "outputs": ["join"],
        "shape": list(shape),
        "program": program,
    })


def chain_program(length: int, shape=(4, 8, 8),
                  code_template: Optional[str] = None,
                  vectorization: int = 1) -> StencilProgram:
    """A linear chain of ``length`` identical j-direction stencils."""
    template = code_template or (
        "0.25 * ({prev}[i,j-1,k] + 2.0*{prev}[i,j,k] + {prev}[i,j+1,k])")
    program = {}
    prev = "inp"
    for n in range(length):
        name = f"s{n}"
        program[name] = {
            "code": template.format(prev=prev),
            "boundary_condition": {prev: {"type": "constant", "value": 0}},
        }
        prev = name
    return StencilProgram.from_json({
        "name": f"chain{length}",
        "inputs": {"inp": {"dtype": "float32", "dims": ["i", "j", "k"]}},
        "outputs": [prev],
        "shape": list(shape),
        "vectorization": vectorization,
        "program": program,
    })


def random_inputs(program: StencilProgram, seed=0) -> Dict[str, np.ndarray]:
    """Random arrays matching every input declaration."""
    rng = np.random.default_rng(seed)
    out = {}
    for name, spec in program.inputs.items():
        shape = spec.shape(program.shape, program.index_names)
        data = rng.random(shape) if shape else rng.random()
        out[name] = np.asarray(data, dtype=spec.dtype.numpy)
    return out


def edge_keys(program: StencilProgram) -> List[Tuple[str, str, str]]:
    from repro.graph import StencilGraph
    return [(e.src, e.dst, e.data) for e in StencilGraph(program).edges]
