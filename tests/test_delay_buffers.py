"""Unit tests for delay-buffer analysis and deadlock certification."""

import pytest

from repro.analysis import (
    analyze_buffers,
    certify,
    certify_analysis,
    required_capacities,
)
from repro.expr import LatencyModel
from util import chain_program, diamond_program, lst1_program


class TestNodeDelays:
    def test_memory_nodes_zero_delay(self):
        analysis = analyze_buffers(lst1_program())
        for node_id in ("input:a0", "input:a2", "output:b4"):
            delay = analysis.node_delays[node_id]
            assert delay.init_cycles == 0
            assert delay.compute_cycles == 0

    def test_accumulation_along_chain(self):
        analysis = analyze_buffers(chain_program(3))
        d0 = analysis.node_delays["stencil:s0"]
        d1 = analysis.node_delays["stencil:s1"]
        d2 = analysis.node_delays["stencil:s2"]
        assert d1.accumulated == d0.accumulated + d1.own
        assert d2.accumulated == d1.accumulated + d2.own

    def test_init_dominates_for_wide_stencils(self):
        analysis = analyze_buffers(lst1_program(shape=(32, 32, 32)))
        b3 = analysis.node_delays["stencil:b3"]
        # b3 reads b1 at i+1: it must consume one full 2D slice ahead of
        # its first output. (The internal *buffer* spans two slices,
        # 2*32*32+1 elements — memory footprint vs. timing.)
        assert b3.init_cycles == 32 * 32
        assert analysis.internal["b3"].init_elements == 2 * 32 * 32 + 1

    def test_pipeline_latency_is_sink_accumulation(self):
        analysis = analyze_buffers(lst1_program())
        assert analysis.pipeline_latency == \
            analysis.node_delays["output:b4"].accumulated


class TestDelayBuffers:
    def test_each_node_has_zero_edge(self):
        analysis = analyze_buffers(lst1_program())
        by_dst = {}
        for (src, dst, data), buf in analysis.delay_buffers.items():
            by_dst.setdefault(dst, []).append(buf.size)
        for dst, sizes in by_dst.items():
            assert min(sizes) == 0, f"{dst} has no zero-delay edge"

    def test_diamond_fast_edge_buffered(self):
        program = diamond_program(long_branch=2)
        analysis = analyze_buffers(program)
        fast = analysis.buffer_for_edge("stencil:s0", "stencil:join", "s0")
        slow = analysis.buffer_for_edge("stencil:slow1", "stencil:join",
                                        "slow1")
        assert slow.size == 0
        # The fast edge must absorb the slow branch's init + compute.
        slow_path = (analysis.node_delays["stencil:slow0"].own
                     + analysis.node_delays["stencil:slow1"].own)
        assert fast.size == slow_path

    def test_chain_needs_no_delay_buffers(self):
        analysis = analyze_buffers(chain_program(4))
        assert analysis.total_delay_buffer_words() == 0

    def test_symmetric_branches_balanced(self):
        # b1 and b2 in Lst.1 are symmetric consumers of b0, so the b0
        # edges carry no buffering; only the b2->b4 edge does (b3's init).
        analysis = analyze_buffers(lst1_program())
        assert analysis.buffer_for_edge(
            "stencil:b0", "stencil:b1", "b0").size == 0
        assert analysis.buffer_for_edge(
            "stencil:b0", "stencil:b2", "b0").size == 0
        b2_to_b4 = analysis.buffer_for_edge("stencil:b2", "stencil:b4",
                                            "b2")
        b3_delay = analysis.node_delays["stencil:b3"].own
        # b1 and b2 have identical compute latency, so the imbalance is
        # exactly b3's own delay.
        assert b2_to_b4.size == b3_delay

    def test_vectorization_shrinks_delays(self):
        scalar = analyze_buffers(lst1_program(shape=(32, 32, 32)))
        vector = analyze_buffers(
            lst1_program(shape=(32, 32, 32)).with_vectorization(8))
        s = scalar.buffer_for_edge("stencil:b2", "stencil:b4", "b2").size
        v = vector.buffer_for_edge("stencil:b2", "stencil:b4", "b2").size
        assert v < s
        # The init component scales ~1/W (compute latency does not).
        assert v <= s // 2

    def test_edge_latency_affects_buffers(self):
        program = diamond_program(long_branch=1)
        key = ("stencil:s0", "stencil:slow0", "s0")
        plain = analyze_buffers(program)
        with_net = analyze_buffers(program, edge_latency={key: 100})
        fast_plain = plain.buffer_for_edge("stencil:s0", "stencil:join",
                                           "s0")
        fast_net = with_net.buffer_for_edge("stencil:s0", "stencil:join",
                                            "s0")
        assert fast_net.size == fast_plain.size + 100

    def test_custom_latency_model(self):
        heavy = LatencyModel({"+": 100, "*": 100}, default=100)
        analysis = analyze_buffers(lst1_program(), latency_model=heavy)
        assert analysis.node_delays["stencil:b0"].compute_cycles >= 100


class TestMemoryAccounting:
    def test_fast_memory_positive(self):
        analysis = analyze_buffers(lst1_program(shape=(32, 32, 32)))
        assert analysis.fast_memory_bytes() > 0

    def test_fast_memory_includes_internal(self):
        analysis = analyze_buffers(lst1_program(shape=(32, 32, 32)))
        internal = analysis.internal["b3"].buffers["b1"]
        assert analysis.fast_memory_bytes() >= internal.size * 4


class TestCertification:
    def test_computed_capacities_certify(self):
        certificate = certify_analysis(analyze_buffers(lst1_program()))
        assert certificate.safe

    def test_underprovision_flagged(self):
        analysis = analyze_buffers(diamond_program(long_branch=2))
        required = required_capacities(analysis)
        starved = {k: 0 for k in required}
        certificate = certify(analysis, starved)
        assert not certificate.safe
        assert any(v.required > 0 for v in certificate.violations)
        assert "under-provisioned" in certificate.explain()

    def test_multitree_always_safe(self):
        analysis = analyze_buffers(chain_program(3))
        certificate = certify(analysis, {})
        assert certificate.safe
        assert certificate.is_multitree

    def test_exact_capacities_safe(self):
        analysis = analyze_buffers(diamond_program(long_branch=2))
        certificate = certify(analysis, required_capacities(analysis))
        assert certificate.safe
        assert "deadlock-free" in certificate.explain()
