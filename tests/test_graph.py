"""Unit tests for the stencil DAG."""

import pytest

from repro.graph import StencilGraph
from util import chain_program, diamond_program, lst1_program


class TestConstruction:
    def test_node_counts(self):
        graph = StencilGraph(lst1_program())
        assert len(graph.input_ids()) == 3
        assert len(graph.stencil_ids()) == 5
        assert len(graph.output_ids()) == 1

    def test_edge_count(self):
        # 2 edges into b0, 2 into b1, 2 into b2, 1 into b3, 2 into b4,
        # plus b4 -> output.
        graph = StencilGraph(lst1_program())
        assert len(graph.edges) == 10

    def test_fanout_edges(self):
        graph = StencilGraph(lst1_program())
        assert set(graph.successors("stencil:b0")) == {
            "stencil:b1", "stencil:b2"}

    def test_node_lookup(self):
        graph = StencilGraph(lst1_program())
        assert graph.node("stencil:b0").name == "b0"
        assert "stencil:b0" in graph
        assert "stencil:zz" not in graph

    def test_sources_and_sinks(self):
        graph = StencilGraph(lst1_program())
        assert set(graph.sources()) == {"input:a0", "input:a1", "input:a2"}
        assert set(graph.sinks()) == {"output:b4"}


class TestTraversal:
    def test_topological_order_respects_edges(self):
        graph = StencilGraph(lst1_program())
        order = graph.topological_order()
        position = {node: n for n, node in enumerate(order)}
        for edge in graph.edges:
            assert position[edge.src] < position[edge.dst]

    def test_stencil_topological_order(self):
        graph = StencilGraph(lst1_program())
        order = graph.stencil_topological_order()
        assert order.index("b0") < order.index("b1")
        assert order.index("b1") < order.index("b3")
        assert order.index("b3") < order.index("b4")

    def test_reverse_reachable(self):
        graph = StencilGraph(lst1_program())
        upstream = graph.reverse_reachable("stencil:b3")
        assert "stencil:b1" in upstream
        assert "stencil:b0" in upstream
        assert "stencil:b2" not in upstream

    def test_all_paths_diamond(self):
        graph = StencilGraph(diamond_program(long_branch=2))
        paths = list(graph.all_paths("stencil:s0", "stencil:join"))
        assert len(paths) == 2
        lengths = sorted(len(p) for p in paths)
        assert lengths == [2, 4]

    def test_longest_path_length(self):
        graph = StencilGraph(chain_program(5))
        assert graph.longest_path_length() == 5


class TestShape:
    def test_chain_is_multitree(self):
        assert StencilGraph(chain_program(4)).is_multitree()

    def test_diamond_is_not_multitree(self):
        assert not StencilGraph(diamond_program()).is_multitree()

    def test_lst1_is_not_multitree(self):
        # b0 reaches b4 via both b1->b3 and b2.
        assert not StencilGraph(lst1_program()).is_multitree()

    def test_repr(self):
        text = repr(StencilGraph(lst1_program()))
        assert "5 stencils" in text

    def test_to_dot(self):
        dot = StencilGraph(lst1_program()).to_dot()
        assert dot.startswith("digraph")
        assert '"stencil:b0" -> "stencil:b1"' in dot
