"""Integration tests for the end-to-end Session."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.run import Session
from repro.programs import horizontal_diffusion
from util import lst1_inputs, lst1_program, random_inputs


class TestSession:
    def test_full_pipeline(self):
        session = Session(lst1_program())
        result = session.run(lst1_inputs())
        assert result.validated
        assert result.simulation.cycles > 0
        assert set(result.outputs) == {"b4"}

    def test_analysis_cached(self):
        session = Session(lst1_program())
        assert session.analysis is session.analysis

    def test_sdfg_and_code(self):
        session = Session(lst1_program())
        assert len(session.sdfg().data) > 0
        files = session.code_package()
        assert "host.cpp" in files

    def test_performance_report(self):
        session = Session(lst1_program())
        report = session.performance()
        assert report.gops > 0

    def test_canonicalize_option(self):
        session = Session(lst1_program(), canonicalize=True)
        # b3+b4 fuse: fewer stencils than the raw program.
        assert len(session.program.stencils) < 5
        result = session.run(lst1_inputs())
        assert result.validated

    def test_from_json(self):
        from util import lst1_spec
        session = Session.from_json(lst1_spec())
        assert session.program.name == "lst1"

    def test_from_file(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text(lst1_program().to_json_string())
        session = Session.from_file(path)
        assert session.program.name == "lst1"

    def test_validation_catches_mismatch(self):
        # Corrupt the simulator output by comparing against different
        # inputs — simplest way to exercise the failure path is a
        # tolerance of zero on a non-trivial program.
        session = Session(lst1_program())
        with pytest.raises(ValidationError):
            session.run(lst1_inputs(), rtol=0.0, atol=0.0)

    def test_distributed_run(self):
        session = Session(lst1_program())
        result = session.run(lst1_inputs(), device_of={
            "b0": 0, "b1": 0, "b2": 0, "b3": 1, "b4": 1})
        assert result.validated

    def test_partition_strategy_run(self):
        session = Session(lst1_program())
        contiguous = session.run(lst1_inputs(),
                                 partition="contiguous", devices=2)
        assert contiguous.validated
        auto = session.run(lst1_inputs(), partition="auto", devices=2)
        assert auto.validated

    def test_placement_strategies(self):
        session = Session(lst1_program())
        contiguous = session.placement("contiguous", 2)
        assert max(contiguous.values()) == 1
        auto = session.placement("auto", 4)
        assert set(auto) == set(session.program.stencil_names)
        with pytest.raises(ValidationError, match="partition strategy"):
            session.placement("scatter", 2)

    def test_partition_and_device_of_conflict(self):
        session = Session(lst1_program())
        with pytest.raises(ValidationError, match="not both"):
            session.run(lst1_inputs(), partition="auto",
                        device_of={"b0": 0})


class TestDeprecatedRunKwargs:
    """The pre-``repro.api`` spellings warn and forward for one
    deprecation cycle."""

    def test_engine_forwards_to_engine_mode(self):
        session = Session(lst1_program())
        with pytest.warns(DeprecationWarning, match="engine_mode"):
            result = session.run(lst1_inputs(), engine="scalar")
        assert result.validated

    def test_placement_forwards_to_partition(self):
        session = Session(lst1_program())
        with pytest.warns(DeprecationWarning, match="partition"):
            result = session.run(lst1_inputs(),
                                 placement="contiguous", devices=2)
        assert result.validated

    def test_old_and_new_spelling_together_is_an_error(self):
        session = Session(lst1_program())
        with pytest.raises(ValidationError, match="not both"):
            session.run(lst1_inputs(), engine="scalar",
                        engine_mode="scalar")

    def test_unknown_kwarg_still_a_type_error(self):
        session = Session(lst1_program())
        with pytest.raises(TypeError, match="unexpected keyword"):
            session.run(lst1_inputs(), engin="scalar")


class TestHdiffEndToEnd:
    """The application study runs through the entire stack."""

    def _inputs(self, program):
        rng = np.random.default_rng(5)
        inputs = {}
        for name, spec in program.inputs.items():
            shape = spec.shape(program.shape, program.index_names)
            inputs[name] = (rng.random(shape, dtype=np.float32) * 0.1
                            + 1.0)
        return inputs

    def test_hdiff_simulates_and_validates(self):
        program = horizontal_diffusion(shape=(16, 16, 8))
        session = Session(program)
        result = session.run(self._inputs(program))
        assert result.validated
        assert all(result.simulation.output_continuous.values())

    def test_hdiff_vectorized(self):
        program = horizontal_diffusion(shape=(16, 16, 8),
                                       vectorization=4)
        session = Session(program)
        result = session.run(self._inputs(program))
        assert result.validated

    def test_hdiff_fused(self):
        program = horizontal_diffusion(shape=(16, 16, 8))
        session = Session(program, canonicalize=True)
        result = session.run(self._inputs(session.program))
        assert result.validated

    def test_hdiff_two_devices(self):
        program = horizontal_diffusion(shape=(16, 16, 8))
        placement = {}
        for stencil in program.stencils:
            # u/v pipeline on device 0, w/pp on device 1 (plus smag).
            placement[stencil.name] = 0 if ("_u" in stencil.name
                                            or "_v" in stencil.name
                                            or stencil.name in
                                            ("t_s", "s_uv")) else 1
        session = Session(program)
        result = session.run(self._inputs(program), device_of=placement)
        assert result.validated
