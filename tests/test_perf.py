"""Unit tests for the performance models."""

import pytest

from repro.distributed import partition_fixed
from repro.hardware import STRATIX10
from repro.perf import (
    arithmetic_intensity_ops_per_byte,
    arithmetic_intensity_ops_per_operand,
    arithmetic_ops_per_cell,
    fpga_result,
    hdiff_comparison_table,
    loadstore_result,
    model_multi_device,
    model_performance,
    operand_traffic,
    operands_per_cycle,
    program_census,
    required_bandwidth_gbs,
    roofline_gops,
    total_ops_per_cell,
)
from repro.hardware.platform import V100, XEON_12C
from repro.programs import chain, horizontal_diffusion
from util import lst1_program


class TestIntensity:
    def test_census_sums_stencils(self):
        program = lst1_program()
        census = program_census(program)
        # b0..b4: 5 adds/subs total... b0:1, b1:1, b2:1, b3:1, b4:1.
        assert census.adds == 5
        assert census.multiplies == 2

    def test_traffic_counts_each_input_once(self):
        program = lst1_program(shape=(8, 8, 8))
        traffic = operand_traffic(program)
        # a0, a1 full 3D + a2 2D; one output.
        assert traffic.read_operands == 512 + 512 + 64
        assert traffic.write_operands == 512

    def test_intensity_ratio(self):
        program = lst1_program(shape=(8, 8, 8))
        ops = arithmetic_ops_per_cell(program) * 512
        ai = arithmetic_intensity_ops_per_operand(program)
        assert ai == pytest.approx(ops / (512 * 3 + 64))

    def test_bytes_conversion(self):
        program = lst1_program()
        assert arithmetic_intensity_ops_per_byte(program) == \
            pytest.approx(arithmetic_intensity_ops_per_operand(program)
                          / 4)

    def test_operands_per_cycle_scales_with_w(self):
        p1 = lst1_program(shape=(8, 8, 8))
        p4 = p1.with_vectorization(4)
        assert operands_per_cycle(p4) == pytest.approx(
            4 * operands_per_cycle(p1))


class TestRoofline:
    def test_eq3(self):
        assert roofline_gops(65 / 18, 58.3) == pytest.approx(210.5,
                                                             abs=0.1)

    def test_eq4(self):
        assert required_bandwidth_gbs(917.1, 65 / 18) == pytest.approx(
            254.0, abs=0.5)


class TestPipelineModel:
    def test_expected_cycles_eq1(self):
        program = chain(3, shape=(32, 16, 16))
        report = model_performance(program)
        assert report.expected_cycles == \
            report.latency_cycles + 32 * 16 * 16

    def test_gops_positive(self):
        report = model_performance(chain(3, shape=(32, 16, 16)))
        assert report.gops > 0
        assert report.runtime_us > 0

    def test_vectorization_speeds_up(self):
        base = chain(3, shape=(1024, 32, 32))
        w4 = chain(3, shape=(1024, 32, 32), vectorization=4)
        assert model_performance(w4).gops > \
            2 * model_performance(base).gops

    def test_memory_bound_throttles(self):
        # hdiff at W=8 requests ~72 operands/cycle: memory bound.
        report = model_performance(horizontal_diffusion(vectorization=8))
        assert report.memory_throughput_factor < 1.0

    def test_infinite_bandwidth_removes_throttle(self):
        report = model_performance(horizontal_diffusion(vectorization=8),
                                   infinite_bandwidth=True)
        assert report.memory_throughput_factor == 1.0

    def test_frequency_override(self):
        report = model_performance(chain(2, shape=(32, 16, 16)),
                                   frequency_mhz=100.0)
        assert report.frequency_mhz == 100.0

    def test_latency_fraction_small_for_large_domain(self):
        report = model_performance(chain(3, shape=(4096, 32, 32)))
        assert report.latency_fraction < 0.01


class TestMultiDevice:
    def test_single_device_partition_equals_plain(self):
        program = chain(4, shape=(256, 32, 32))
        partition = partition_fixed(
            program, {f"s{n}": 0 for n in range(4)})
        multi = model_multi_device(program, partition)
        plain = model_performance(program)
        assert multi.gops == pytest.approx(plain.gops, rel=0.01)

    def test_two_devices_use_multi_node_clock(self):
        program = chain(4, shape=(256, 32, 32))
        partition = partition_fixed(
            program, {"s0": 0, "s1": 0, "s2": 1, "s3": 1})
        report = model_multi_device(program, partition)
        assert report.frequency_mhz == pytest.approx(215.0)

    def test_scaling_roughly_linear(self):
        counts = {}
        for devices in (1, 2, 4):
            n = 16 * devices
            program = chain(n, shape=(1 << 13, 32, 32))
            per_device = 16
            placement = {f"s{i}": i // per_device for i in range(n)}
            partition = partition_fixed(program, placement)
            counts[devices] = model_multi_device(program,
                                                 partition).gops
        assert counts[4] > 1.8 * counts[2]
        assert counts[2] > 1.2 * counts[1]


class TestComparison:
    def test_loadstore_row_matches_formula(self):
        program = horizontal_diffusion(vectorization=8)
        row = loadstore_result(program, V100)
        ai = arithmetic_intensity_ops_per_byte(program)
        assert row.gops == pytest.approx(ai * 900 * 0.26)

    def test_fpga_row_has_roof_fraction(self):
        program = horizontal_diffusion(vectorization=8)
        row = fpga_result(program, memory_efficiency=0.69)
        assert 0.3 < row.roof_fraction < 0.7

    def test_table_has_five_rows(self):
        table = hdiff_comparison_table(
            horizontal_diffusion(vectorization=8))
        assert len(table) == 5
        names = [row.platform for row in table]
        assert any("infinite" in n for n in names)

    def test_silicon_efficiency(self):
        program = horizontal_diffusion(vectorization=8)
        row = loadstore_result(program, V100)
        assert row.silicon_efficiency == pytest.approx(
            row.gops / 815.0)

    def test_xeon_slowest(self):
        table = hdiff_comparison_table(
            horizontal_diffusion(vectorization=8))
        xeon = [r for r in table if "Xeon" in r.platform][0]
        assert xeon.gops == min(r.gops for r in table)
