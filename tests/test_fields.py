"""Unit tests for repro.core.fields."""

import pytest

from repro.core import FieldSpec, dtype, flatten_offset, memory_order_distance
from repro.core.fields import Access
from repro.errors import DefinitionError


class TestFieldSpec:
    def test_full_3d(self):
        spec = FieldSpec("a", dtype("float32"), ("i", "j", "k"))
        assert spec.rank == 3
        assert not spec.is_scalar

    def test_scalar(self):
        spec = FieldSpec("c", dtype("float32"), ())
        assert spec.rank == 0
        assert spec.is_scalar

    def test_lower_dimensional(self):
        spec = FieldSpec("a2", dtype("float32"), ("i", "k"))
        assert spec.rank == 2

    def test_shape_full(self):
        spec = FieldSpec("a", dtype("float32"), ("i", "j", "k"))
        assert spec.shape((4, 5, 6), ("i", "j", "k")) == (4, 5, 6)

    def test_shape_subset(self):
        spec = FieldSpec("a2", dtype("float32"), ("i", "k"))
        assert spec.shape((4, 5, 6), ("i", "j", "k")) == (4, 6)

    def test_shape_scalar(self):
        spec = FieldSpec("c", dtype("float32"), ())
        assert spec.shape((4, 5, 6), ("i", "j", "k")) == ()

    def test_invalid_name(self):
        with pytest.raises(DefinitionError, match="invalid field name"):
            FieldSpec("2bad", dtype("float32"), ("i",))

    def test_unknown_dim(self):
        with pytest.raises(DefinitionError, match="unknown dimension"):
            FieldSpec("a", dtype("float32"), ("i", "x"))

    def test_duplicate_dim(self):
        with pytest.raises(DefinitionError, match="duplicate"):
            FieldSpec("a", dtype("float32"), ("i", "i"))

    def test_out_of_order_dims(self):
        with pytest.raises(DefinitionError, match="iteration order"):
            FieldSpec("a", dtype("float32"), ("j", "i"))

    def test_json_roundtrip(self):
        spec = FieldSpec("a2", dtype("float64"), ("i", "k"))
        again = FieldSpec.from_json("a2", spec.to_json())
        assert again == spec

    def test_from_json_defaults_dims(self):
        spec = FieldSpec.from_json("a", {"dtype": "float32"})
        assert spec.dims == ("i", "j", "k")

    def test_from_json_missing_dtype(self):
        with pytest.raises(DefinitionError, match="missing 'dtype'"):
            FieldSpec.from_json("a", {})


class TestAccess:
    def test_str_scalar(self):
        assert str(Access("c", ())) == "c"

    def test_str_offsets(self):
        assert str(Access("a", (-1, 0, 2))) == "a[-1, 0, 2]"

    def test_expand(self):
        acc = Access("a2", (1, -2))
        assert acc.expand(("i", "k"), ("i", "j", "k")) == (1, None, -2)


class TestFlattenOffset:
    def test_innermost_is_contiguous(self):
        assert flatten_offset((0, 0, 1), (32, 32, 32)) == 1

    def test_middle_dimension(self):
        assert flatten_offset((0, 1, 0), (32, 32, 32)) == 32

    def test_outer_dimension(self):
        assert flatten_offset((1, 0, 0), (32, 32, 32)) == 1024

    def test_negative(self):
        assert flatten_offset((-1, 0, 0), (32, 32, 32)) == -1024

    def test_mixed(self):
        assert flatten_offset((1, -1, 2), (4, 8, 16)) == 128 - 16 + 2

    def test_2d(self):
        assert flatten_offset((1, 1), (10, 20)) == 21


class TestMemoryOrderDistance:
    def test_paper_example_rows(self):
        # a[0,1,0] and a[0,-1,0] in a {K,J,I} = 32^3 space: two rows.
        assert memory_order_distance((0, 1, 0), (0, -1, 0),
                                     (32, 32, 32)) == 64

    def test_paper_example_slices(self):
        # b[0,0,0] and b[1,0,0]: one 2D slice.
        assert memory_order_distance((0, 0, 0), (1, 0, 0),
                                     (32, 32, 32)) == 1024

    def test_symmetric(self):
        a, b = (0, 1, 0), (1, 0, -1)
        domain = (8, 8, 8)
        assert (memory_order_distance(a, b, domain)
                == memory_order_distance(b, a, domain))

    def test_rank_mismatch(self):
        with pytest.raises(DefinitionError):
            memory_order_distance((0, 1), (0, 0, 0), (8, 8, 8))
