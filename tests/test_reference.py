"""Unit tests for the NumPy reference executor."""

import numpy as np
import pytest

from repro.core import StencilProgram
from repro.errors import ValidationError
from repro.run import run_reference
from util import lst1_inputs, lst1_program


def _program(code, boundary="shrink", shape=(6, 6), dims=("i", "j")):
    return StencilProgram.from_json({
        "inputs": {"a": {"dtype": "float32", "dims": list(dims)}},
        "outputs": ["s"],
        "shape": list(shape),
        "program": {"s": {"code": code, "boundary_condition": boundary}},
    })


class TestBoundaries:
    def test_constant_boundary(self):
        program = _program("a[i,j-1] + a[i,j+1]",
                           {"a": {"type": "constant", "value": 10.0}})
        a = np.ones((6, 6), dtype=np.float32)
        result = run_reference(program, {"a": a})["s"]
        assert result.is_fully_valid
        # Interior: 1 + 1; edges: 10 + 1.
        assert result.data[0, 0] == pytest.approx(11.0)
        assert result.data[0, 3] == pytest.approx(2.0)

    def test_copy_boundary(self):
        program = _program("a[i,j-1] + a[i,j+1]", {"a": {"type": "copy"}})
        a = np.arange(36, dtype=np.float32).reshape(6, 6)
        result = run_reference(program, {"a": a})["s"]
        # At j=0 the left neighbour is replaced by the center.
        assert result.data[2, 0] == pytest.approx(a[2, 0] + a[2, 1])

    def test_shrink_marks_invalid(self):
        program = _program("a[i,j-1] + a[i,j+1]")
        a = np.ones((6, 6), dtype=np.float32)
        result = run_reference(program, {"a": a})["s"]
        assert result.valid == ((0, 6), (1, 5))
        assert np.isnan(result.data[:, 0]).all()
        assert np.isnan(result.data[:, 5]).all()
        assert np.all(result.valid_view == 2.0)

    def test_shrink_propagates(self):
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
            "outputs": ["t"],
            "shape": [6, 6],
            "program": {
                "s": {"code": "a[i,j-1] + a[i,j+1]",
                      "boundary_condition": "shrink"},
                "t": {"code": "s[i,j-1] + s[i,j+1]",
                      "boundary_condition": "shrink"},
            },
        })
        a = np.ones((6, 6), dtype=np.float32)
        result = run_reference(program, {"a": a})["t"]
        assert result.valid == ((0, 6), (2, 4))
        assert np.all(result.valid_view == 4.0)

    def test_constant_after_shrink_does_not_revalidate(self):
        # A constant-boundary consumer of a shrunk producer still reads
        # the producer's invalid boundary cells; they stay invalid.
        program = StencilProgram.from_json({
            "inputs": {"a": {"dtype": "float32", "dims": ["i", "j"]}},
            "outputs": ["t"],
            "shape": [6, 6],
            "program": {
                "s": {"code": "a[i,j-1] + a[i,j+1]",
                      "boundary_condition": "shrink"},
                "t": {"code": "s[i,j-1] + s[i,j+1]",
                      "boundary_condition": {
                          "s": {"type": "constant", "value": 0}}},
            },
        })
        a = np.ones((6, 6), dtype=np.float32)
        result = run_reference(program, {"a": a})["t"]
        assert result.valid == ((0, 6), (2, 4))


class TestSemantics:
    def test_lst1_manual_check(self):
        program = lst1_program()
        inputs = lst1_inputs()
        results = run_reference(program, inputs)
        b0 = inputs["a0"] + inputs["a1"]
        b1 = 0.5 * (b0 + inputs["a2"][:, None, :])
        b2 = 0.5 * (b0 - inputs["a2"][:, None, :])
        b3 = b1[:-2] + b1[2:]
        expected = b2[1:7] + b3
        np.testing.assert_allclose(results["b4"].valid_view, expected,
                                   rtol=1e-6)

    def test_lower_dim_broadcast(self):
        program = StencilProgram.from_json({
            "inputs": {
                "a": {"dtype": "float32", "dims": ["i", "j"]},
                "row": {"dtype": "float32", "dims": ["j"]},
            },
            "outputs": ["s"],
            "shape": [4, 5],
            "program": {"s": {"code": "a[i,j] + row[j]",
                              "boundary_condition": "shrink"}},
        })
        a = np.zeros((4, 5), dtype=np.float32)
        row = np.arange(5, dtype=np.float32)
        result = run_reference(program, {"a": a, "row": row})["s"]
        np.testing.assert_allclose(result.data, np.tile(row, (4, 1)))

    def test_scalar_input(self):
        program = StencilProgram.from_json({
            "inputs": {
                "a": {"dtype": "float32", "dims": ["i"]},
                "c": {"dtype": "float32", "dims": []},
            },
            "outputs": ["s"],
            "shape": [8],
            "program": {"s": {"code": "a[i] * c",
                              "boundary_condition": "shrink"}},
        })
        a = np.ones(8, dtype=np.float32)
        result = run_reference(program, {"a": a, "c": 3.0})["s"]
        np.testing.assert_allclose(result.data, 3.0)

    def test_data_dependent_branch(self):
        program = _program("a[i,j] > 0 ? a[i,j] : -a[i,j]")
        a = np.array([[-1.0, 2.0], [3.0, -4.0]], dtype=np.float32)
        result = run_reference(
            _program("a[i,j] > 0 ? a[i,j] : -a[i,j]", shape=(2, 2)),
            {"a": a})["s"]
        np.testing.assert_allclose(result.data, np.abs(a))

    def test_output_dtype(self):
        program = lst1_program()
        results = run_reference(program, lst1_inputs())
        assert results["b4"].data.dtype == np.float32

    def test_all_intermediates_returned(self):
        results = run_reference(lst1_program(), lst1_inputs())
        assert set(results) == {"b0", "b1", "b2", "b3", "b4"}


class TestInputValidation:
    def test_missing_input(self):
        with pytest.raises(ValidationError, match="missing input"):
            run_reference(lst1_program(), {})

    def test_wrong_shape(self):
        inputs = lst1_inputs()
        inputs["a2"] = np.ones((3, 3), dtype=np.float32)
        with pytest.raises(ValidationError, match="expected shape"):
            run_reference(lst1_program(), inputs)
