#!/usr/bin/env python
"""CI serve smoke check (docs/SERVING.md).

Runs the config-query service against a pre-seeded cache, in-process,
and asserts the serving acceptance criteria end to end:

1. **Always warm**: ``/v1/best`` hits are answered from the in-memory
   frontier index — p50 of the server-side index-probe latency
   (``lookup_seconds``) under 1 ms across ``WARM_QUERIES`` requests,
   with **zero lowering artifact-cache misses** (nothing relowers,
   nothing simulates).
2. **Miss converges**: a cold query returns ``202`` with a job id,
   the job dedupes with an identical concurrent miss, and the poll
   endpoint converges to a measured best, after which the same query
   is a warm ``200``.
3. **Telemetry**: ``/v1/metricsz`` returns the obs registry snapshot
   (schema 1) carrying the serve counters and the lookup histogram.

Run from the repo root: ``python scripts/serve_smoke.py [OUTDIR]``.
Writes ``serve-smoke.json`` (latency percentiles, metrics snapshot)
into OUTDIR and exits non-zero on any violation.
"""

import json
import os
import statistics
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

WARM_QUERIES = 200
P50_BUDGET_SECONDS = 0.001
SHAPE = (24, 24)
COLD_SHAPE = (16, 16)


def log(message: str):
    print(f"[serve-smoke] {message}", flush=True)


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=60) \
                as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def main() -> int:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    tmp = tempfile.TemporaryDirectory(prefix="repro-serve-smoke-")
    os.environ["REPRO_CACHE_DIR"] = str(Path(tmp.name) / "cache")

    from repro import api
    from repro.explore import ConfigSpace
    from repro.lowering import default_cache
    from repro.serve import ReproServer, ServeConfig

    # Seed: one persisted sweep puts a front in the report store.
    log(f"seeding the cache: laplace2d @ {SHAPE}")
    space = ConfigSpace(vectorizations=(1, 2, 4))
    report = api.explore("laplace2d", shape=SHAPE, space=space,
                         strategy="exhaustive", backend="thread")
    assert report.best is not None, "seed sweep produced no best"

    config = ServeConfig(port=0, backend="process", max_devices=1,
                         beam_width=2,
                         explore_kwargs={"space": space,
                                         "strategy": "exhaustive"})
    server = ReproServer(config).start()
    log(f"server on {server.url}, {len(server.index)} cached front(s)")
    try:
        shape_arg = ",".join(map(str, SHAPE))
        warm_path = f"/v1/best?program=laplace2d&shape={shape_arg}"

        # One untimed request absorbs the first-time resolution
        # (catalog build + content hash — memoized after this).
        status, body = get(server, warm_path)
        assert status == 200, f"seeded query missed: {body}"

        default_cache().reset_stats()
        lookups = []
        for _ in range(WARM_QUERIES):
            status, body = get(server, warm_path)
            assert status == 200, f"warm query fell cold: {body}"
            lookups.append(body["lookup_seconds"])
        p50 = statistics.median(lookups)
        p99 = sorted(lookups)[int(0.99 * len(lookups))]
        log(f"warm lookup over {WARM_QUERIES} queries: "
            f"p50 {p50 * 1e6:.1f}us, p99 {p99 * 1e6:.1f}us")
        assert p50 < P50_BUDGET_SECONDS, (
            f"warm p50 {p50 * 1e3:.3f}ms blows the "
            f"{P50_BUDGET_SECONDS * 1e3:.0f}ms budget")
        misses = default_cache().misses
        assert misses == 0, (
            f"warm queries caused {misses} artifact-cache misses — "
            f"something relowered")
        log("0 artifact-cache misses across warm queries")

        # Cold: 202, dedupe, converge.
        cold_arg = ",".join(map(str, COLD_SHAPE))
        cold_path = f"/v1/best?program=laplace2d&shape={cold_arg}"
        status, body = get(server, cold_path)
        assert status == 202, f"cold query did not 202: {body}"
        job_id = body["job"]["job_id"]
        status, body = get(server, cold_path)
        if status == 202:
            assert body["job"]["job_id"] == job_id, (
                "identical miss forked a second job")
        log(f"cold query enqueued job {job_id}")

        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            status, body = get(server, f"/v1/jobs/{job_id}")
            if body["job"]["state"] in ("done", "failed"):
                break
            time.sleep(0.5)
        assert body["job"]["state"] == "done", (
            f"job did not converge: {body['job']}")
        assert body["job"]["best"]["simulated_cycles"] > 0
        log(f"job done: best "
            f"{body['job']['best']['simulated_cycles']} cycles")

        status, body = get(server, cold_path)
        assert status == 200, "converged query still cold"
        log("converged query is warm")

        # Metrics shape.
        status, body = get(server, "/v1/metricsz")
        assert status == 200
        snapshot = body["metrics"]
        assert snapshot["schema"] == 1, snapshot
        for section in ("counters", "gauges", "histograms"):
            assert isinstance(snapshot[section], list), section
        counters = {rec["name"] for rec in snapshot["counters"]}
        for name in ("serve.requests", "serve.query_hits",
                     "serve.jobs_enqueued", "serve.jobs_completed"):
            assert name in counters, f"missing counter {name}"
        histograms = {rec["name"] for rec in snapshot["histograms"]}
        assert "serve.lookup_seconds" in histograms, histograms
        log(f"metricsz shape ok ({len(counters)} counters)")

        status, health = get(server, "/v1/healthz")
        assert health["ok"] and health["index_entries"] >= 2

        if outdir is not None:
            outdir.mkdir(parents=True, exist_ok=True)
            (outdir / "serve-smoke.json").write_text(json.dumps({
                "warm_queries": WARM_QUERIES,
                "lookup_p50_seconds": p50,
                "lookup_p99_seconds": p99,
                "artifact_cache_misses": misses,
                "job_id": job_id,
                "metrics": snapshot,
            }, indent=2))
            log(f"artifacts copied to {outdir}")
    finally:
        server.close()
        tmp.cleanup()
    log("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
