#!/usr/bin/env python
"""CI telemetry smoke check (docs/OBSERVABILITY.md).

Runs the same tiny sweep twice — once plain, once with telemetry
enabled — and asserts the overhead contract end to end:

1. **Zero perturbation**: per-point simulated cycle counts are
   bitwise-equal between the instrumented and plain sweeps, for both
   the thread and the supervised process backend.
2. **Artifacts**: the instrumented sweep produces a parseable metrics
   snapshot and a Chrome trace-event JSON (Perfetto-loadable shape:
   ``traceEvents`` with ``M`` thread-name metadata and ``X`` complete
   events); the process-backend trace carries one lane per worker,
   reconstructed from the run journal.
3. **Totals**: thread- and process-backend snapshots agree on the
   backend-agnostic counter totals.

Run from the repo root: ``python scripts/telemetry_smoke.py OUTDIR``.
Writes ``metrics-<backend>.json`` and ``trace-<backend>.json`` into
OUTDIR (uploaded as CI artifacts) and exits non-zero on any violation.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

SWEEP = ["--program", "laplace2d", "--shape", "24,24",
         "--widths", "1,2,4", "--strategy", "exhaustive",
         "--workers", "2", "--no-cache-persist"]

#: Counter totals that must not depend on the backend.
EQUIVALENT = ("explore.sweeps", "explore.points_priced",
              "explore.points_measured", "engine.runs",
              "engine.cycles")


def log(message: str):
    print(f"[telemetry-smoke] {message}", flush=True)


def run_sweep(workdir: Path, backend: str, tag: str, telemetry: bool):
    report = workdir / f"report-{tag}.json"
    argv = [sys.executable, "-m", "repro", "explore",
            *SWEEP, "--backend", backend, "--output", str(report)]
    if telemetry:
        argv += ["--metrics", str(workdir / f"metrics-{tag}.json"),
                 "--trace", str(workdir / f"trace-{tag}.json")]
    env = dict(os.environ,
               PYTHONPATH=str(SRC),
               REPRO_CACHE_DIR=str(workdir / f"cache-{tag}"))
    subprocess.run(argv, check=True, cwd=ROOT, env=env)
    return json.loads(report.read_text())


def cycles_by_label(report: dict) -> dict:
    return {json.dumps(entry["point"], sort_keys=True):
            entry["simulated_cycles"]
            for entry in report["entries"]
            if entry.get("simulated_cycles") is not None}


def counter_totals(snapshot: dict) -> dict:
    totals = {name: 0.0 for name in EQUIVALENT}
    for rec in snapshot["counters"]:
        if rec["name"] in totals:
            totals[rec["name"]] += rec["value"]
    return totals


def check_trace(path: Path, expect_workers: bool):
    spec = json.loads(path.read_text())
    events = spec["traceEvents"]
    assert events, f"{path.name}: empty trace"
    phases = {event["ph"] for event in events}
    assert phases <= {"M", "X"}, f"unexpected phases {phases}"
    lanes = {event["args"]["name"] for event in events
             if event["ph"] == "M"}
    spans = {event["name"] for event in events if event["ph"] == "X"}
    assert "explore.simulate" in spans, f"missing sweep spans: {spans}"
    if expect_workers:
        workers = {name for name in lanes
                   if name.startswith("worker-")}
        assert len(workers) == 2, \
            f"expected one lane per worker, got lanes {lanes}"
        assert "supervisor" in lanes, lanes
        for name in ("service.run", "service.worker", "service.job"):
            assert name in spans, f"missing {name} in {spans}"
    log(f"{path.name}: {len(events)} events, lanes {sorted(lanes)}")


def main() -> int:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    with tempfile.TemporaryDirectory(prefix="repro-telemetry-") as tmp:
        workdir = Path(tmp)
        totals = {}
        for backend in ("thread", "process"):
            log(f"{backend}: plain sweep")
            plain = run_sweep(workdir, backend, f"{backend}-plain",
                              telemetry=False)
            log(f"{backend}: instrumented sweep")
            traced = run_sweep(workdir, backend, backend,
                               telemetry=True)

            plain_cycles = cycles_by_label(plain)
            traced_cycles = cycles_by_label(traced)
            assert plain_cycles, "sweep simulated nothing"
            assert traced_cycles == plain_cycles, (
                f"telemetry perturbed {backend} cycle counts: "
                f"{traced_cycles} != {plain_cycles}")
            log(f"{backend}: cycles bitwise-equal "
                f"({sorted(plain_cycles.values())})")

            snapshot = json.loads(
                (workdir / f"metrics-{backend}.json").read_text())
            assert snapshot["schema"] == 1
            totals[backend] = counter_totals(snapshot)
            check_trace(workdir / f"trace-{backend}.json",
                        expect_workers=(backend == "process"))

        assert totals["thread"] == totals["process"], (
            f"backend metric totals diverge: {totals}")
        log(f"backend-agnostic totals match: {totals['thread']}")

        if outdir is not None:
            outdir.mkdir(parents=True, exist_ok=True)
            for backend in ("thread", "process"):
                for stem in ("metrics", "trace"):
                    src = workdir / f"{stem}-{backend}.json"
                    (outdir / src.name).write_text(src.read_text())
            log(f"artifacts copied to {outdir}")
    log("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
