#!/usr/bin/env python
"""CI crash-recovery check for the explorer's persistent cache.

Exercises the resilience contract end to end (docs/RESILIENCE.md):

1. **Quarantine**: a garbage persistent cache file must not take a
   sweep down — it is renamed aside with a warning, the sweep
   succeeds, and a clean cache is rebuilt.
2. **Resume**: a sweep killed mid-run (after at least one
   per-point checkpoint) leaves a valid partial cache behind; the
   next run picks the partial results up as cache hits and completes.

Run from the repo root: ``python scripts/crash_recovery_check.py``.
Exits non-zero on any violation.
"""

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


def log(message: str):
    print(f"[crash-recovery] {message}", flush=True)


def fail(message: str):
    log(f"FAIL: {message}")
    sys.exit(1)


def sweep_argv(tmp: Path, report: str, widths: str) -> list:
    return [sys.executable, "-m", "repro", "explore",
            "--program", "laplace2d", "--shape", "64,64",
            "--widths", widths, "--strategy", "exhaustive",
            "--checkpoint-every", "1",
            "--output", str(tmp / report)]


def main():
    tmp = Path(tempfile.mkdtemp(prefix="repro-crash-check-"))
    cache_dir = tmp / "cache"
    cache_path = cache_dir / "explore_cache.json"
    env = dict(os.environ,
               REPRO_CACHE_DIR=str(cache_dir),
               PYTHONPATH=str(SRC))

    # -- Phase 1: corrupt cache is quarantined, sweep still succeeds.
    cache_dir.mkdir(parents=True)
    cache_path.write_text('{"definitely": "not a measurement"')
    proc = subprocess.run(sweep_argv(tmp, "r1.json", "1,2"),
                          env=env, capture_output=True, text=True,
                          timeout=600)
    if proc.returncode != 0:
        fail(f"sweep over a corrupt cache exited "
             f"{proc.returncode}:\n{proc.stderr}")
    if "quarantined" not in proc.stderr:
        fail(f"no quarantine warning on stderr:\n{proc.stderr}")
    if not any(".corrupt-" in p.name for p in cache_dir.iterdir()):
        fail("corrupt cache file was not kept aside")
    try:
        rebuilt = json.loads(cache_path.read_text())
    except Exception as exc:
        fail(f"rebuilt cache is not valid JSON: {exc!r}")
    if not rebuilt:
        fail("rebuilt cache recorded no measurements")
    log("phase 1 ok: corrupt cache quarantined, sweep completed, "
        "clean cache rebuilt")

    # -- Phase 2: kill a sweep mid-run, then resume.
    for stale in cache_dir.iterdir():
        stale.unlink()
    child = subprocess.Popen(sweep_argv(tmp, "r2.json", "1,2,4,8"),
                             env=env,
                             stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)
    killed = False
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if child.poll() is not None:
            break
        try:
            if cache_path.exists() and \
                    json.loads(cache_path.read_text()):
                child.kill()  # first checkpoint landed: pull the plug
                killed = True
                break
        except (OSError, ValueError):
            pass  # between atomic replaces; keep polling
        time.sleep(0.01)
    child.wait(timeout=60)
    if not killed:
        if child.returncode != 0:
            fail(f"victim sweep died on its own: {child.returncode}")
        log("warning: sweep finished before it could be killed; "
            "resume check degenerates to a full-cache-hit run")
    else:
        log("phase 2: sweep killed after its first checkpoint")
    try:
        partial = json.loads(cache_path.read_text())
    except Exception as exc:
        fail(f"checkpointed cache is not valid JSON after the "
             f"kill: {exc!r}")
    if not partial:
        fail("no partial results survived the kill")

    proc = subprocess.run(sweep_argv(tmp, "r3.json", "1,2,4,8"),
                          env=env, capture_output=True, text=True,
                          timeout=600)
    if proc.returncode != 0:
        fail(f"resumed sweep exited {proc.returncode}:\n{proc.stderr}")
    if "quarantined" in proc.stderr:
        fail(f"resume quarantined the checkpoint (it should be "
             f"valid):\n{proc.stderr}")
    report = json.loads((tmp / "r3.json").read_text())
    if report["cache_hits"] < 1:
        fail("resumed sweep did not reuse the partial results")
    if report["summary"]["failed_points"] != 0:
        fail(f"resumed sweep reported failed points: "
             f"{report['summary']['failed_points']}")
    log(f"phase 2 ok: resumed sweep completed with "
        f"{report['cache_hits']} cache hit(s)")
    log("all checks passed")


if __name__ == "__main__":
    main()
