#!/usr/bin/env python
"""CI crash-recovery check for the explorer's persistent cache.

Exercises the resilience contract end to end (docs/RESILIENCE.md):

1. **Quarantine**: a garbage persistent cache file must not take a
   sweep down — it is renamed aside with a warning, the sweep
   succeeds, and a clean cache is rebuilt.
2. **Resume**: a sweep killed mid-run (after at least one
   per-point checkpoint) leaves a valid partial cache behind; the
   next run picks the partial results up as cache hits and completes.
3. **Supervision**: a process-backend sweep survives one of its
   worker processes being SIGKILLed mid-run — the lease is
   reassigned, the sweep completes with zero failed points, and the
   journal records the death and the recovery.
4. **Crash-loop quarantine**: a deterministic poison-pill point that
   SIGKILLs its worker on every attempt is quarantined as
   ``poisoned`` after exactly two worker deaths; every other point
   still simulates.

Run from the repo root: ``python scripts/crash_recovery_check.py``.
Exits non-zero on any violation.
"""

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
sys.path.insert(0, str(SRC))


def log(message: str):
    print(f"[crash-recovery] {message}", flush=True)


def fail(message: str):
    log(f"FAIL: {message}")
    sys.exit(1)


def sweep_argv(tmp: Path, report: str, widths: str) -> list:
    return [sys.executable, "-m", "repro", "explore",
            "--program", "laplace2d", "--shape", "64,64",
            "--widths", widths, "--strategy", "exhaustive",
            "--checkpoint-every", "1",
            "--output", str(tmp / report)]


def main():
    tmp = Path(tempfile.mkdtemp(prefix="repro-crash-check-"))
    cache_dir = tmp / "cache"
    cache_path = cache_dir / "explore_cache.json"
    env = dict(os.environ,
               REPRO_CACHE_DIR=str(cache_dir),
               PYTHONPATH=str(SRC))

    # -- Phase 1: corrupt cache is quarantined, sweep still succeeds.
    cache_dir.mkdir(parents=True)
    cache_path.write_text('{"definitely": "not a measurement"')
    proc = subprocess.run(sweep_argv(tmp, "r1.json", "1,2"),
                          env=env, capture_output=True, text=True,
                          timeout=600)
    if proc.returncode != 0:
        fail(f"sweep over a corrupt cache exited "
             f"{proc.returncode}:\n{proc.stderr}")
    if "quarantined" not in proc.stderr:
        fail(f"no quarantine warning on stderr:\n{proc.stderr}")
    if not any(".corrupt-" in p.name for p in cache_dir.iterdir()):
        fail("corrupt cache file was not kept aside")
    try:
        rebuilt = json.loads(cache_path.read_text())
    except Exception as exc:
        fail(f"rebuilt cache is not valid JSON: {exc!r}")
    if not rebuilt:
        fail("rebuilt cache recorded no measurements")
    log("phase 1 ok: corrupt cache quarantined, sweep completed, "
        "clean cache rebuilt")

    # -- Phase 2: kill a sweep mid-run, then resume.
    for stale in cache_dir.iterdir():
        stale.unlink()
    child = subprocess.Popen(sweep_argv(tmp, "r2.json", "1,2,4,8"),
                             env=env,
                             stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)
    killed = False
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if child.poll() is not None:
            break
        try:
            if cache_path.exists() and \
                    json.loads(cache_path.read_text()):
                child.kill()  # first checkpoint landed: pull the plug
                killed = True
                break
        except (OSError, ValueError):
            pass  # between atomic replaces; keep polling
        time.sleep(0.01)
    child.wait(timeout=60)
    if not killed:
        if child.returncode != 0:
            fail(f"victim sweep died on its own: {child.returncode}")
        log("warning: sweep finished before it could be killed; "
            "resume check degenerates to a full-cache-hit run")
    else:
        log("phase 2: sweep killed after its first checkpoint")
    try:
        partial = json.loads(cache_path.read_text())
    except Exception as exc:
        fail(f"checkpointed cache is not valid JSON after the "
             f"kill: {exc!r}")
    if not partial:
        fail("no partial results survived the kill")

    proc = subprocess.run(sweep_argv(tmp, "r3.json", "1,2,4,8"),
                          env=env, capture_output=True, text=True,
                          timeout=600)
    if proc.returncode != 0:
        fail(f"resumed sweep exited {proc.returncode}:\n{proc.stderr}")
    if "quarantined" in proc.stderr:
        fail(f"resume quarantined the checkpoint (it should be "
             f"valid):\n{proc.stderr}")
    report = json.loads((tmp / "r3.json").read_text())
    if report["cache_hits"] < 1:
        fail("resumed sweep did not reuse the partial results")
    if report["summary"]["failed_points"] != 0:
        fail(f"resumed sweep reported failed points: "
             f"{report['summary']['failed_points']}")
    log(f"phase 2 ok: resumed sweep completed with "
        f"{report['cache_hits']} cache hit(s)")

    # -- Phase 3: SIGKILL one worker of a process-backend sweep.
    from repro.service.journal import JOURNAL_NAME, JobJournal

    def reset_cache_dir():
        import shutil
        shutil.rmtree(cache_dir, ignore_errors=True)
        cache_dir.mkdir(parents=True)

    def process_argv(report_name: str, widths: str) -> list:
        return sweep_argv(tmp, report_name, widths) + \
            ["--backend", "process", "--workers", "2"]

    def run_dirs():
        service = cache_dir / "service"
        if not service.is_dir():
            return []
        return sorted(p for p in service.iterdir()
                      if p.is_dir() and (p / JOURNAL_NAME).exists())

    reset_cache_dir()
    chaos_env = dict(env, REPRO_SERVICE_KEEP_RUNDIR="1")
    child = subprocess.Popen(process_argv("r4.json", "1,2,4,8"),
                             env=chaos_env,
                             stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)
    victim_killed = False
    deadline = time.monotonic() + 300
    import signal
    while time.monotonic() < deadline and child.poll() is None:
        pidfiles = [p for d in run_dirs()
                    for p in d.glob("worker-*.pid")]
        if pidfiles:
            try:
                pid = int(pidfiles[0].read_text().strip())
                os.kill(pid, signal.SIGKILL)
                victim_killed = True
                log(f"phase 3: SIGKILLed worker pid {pid}")
                break
            except (OSError, ValueError):
                pass  # worker already gone; keep polling
        time.sleep(0.01)
    try:
        child.wait(timeout=600)
    except subprocess.TimeoutExpired:
        child.kill()
        fail("chaos sweep hung after the worker was killed")
    if child.returncode != 0:
        fail(f"chaos sweep exited {child.returncode}")
    report = json.loads((tmp / "r4.json").read_text())
    summary = report["summary"]
    if summary["failed_points"] != 0:
        fail(f"chaos sweep lost points: "
             f"{summary['failed_points']} failed")
    if summary["simulated_points"] != summary["total_points"]:
        fail(f"chaos sweep simulated "
             f"{summary['simulated_points']}/"
             f"{summary['total_points']} points")
    if not victim_killed:
        log("warning: sweep finished before a worker could be "
            "killed; supervision check degenerates to a clean run")
    else:
        dirs = run_dirs()
        if not dirs:
            fail("no run directory survived (KEEP_RUNDIR was set)")
        state = JobJournal.replay(dirs[-1] / JOURNAL_NAME)
        if state.worker_deaths < 1:
            fail("journal recorded no worker death after SIGKILL")
        if not state.completed_run:
            fail(f"journal says the run did not complete: "
                 f"{state.summary()}")
        if state.unresolved():
            fail(f"journal left unresolved jobs: "
                 f"{state.unresolved()}")
        recovered = state.requeues \
            + state.events.get("job_completed", 0)
        if recovered < summary["total_points"]:
            fail("killed worker's lease was neither requeued nor "
                 "recovered")
        log(f"phase 3 ok: worker death survived "
            f"({state.summary()})")

    # -- Phase 4: a poison-pill point is quarantined after exactly
    # two worker deaths; everything else still simulates.
    reset_cache_dir()
    poison_env = dict(chaos_env, REPRO_SERVICE_POISON="W2 x1c")
    proc = subprocess.run(process_argv("r5.json", "1,2,4"),
                          env=poison_env, capture_output=True,
                          text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"poison sweep exited {proc.returncode}:\n{proc.stderr}")
    report = json.loads((tmp / "r5.json").read_text())
    failed = [e for e in report["entries"] if e["failed"]]
    if len(failed) != 1:
        fail(f"expected exactly one poisoned point, got "
             f"{len(failed)}")
    failure = failed[0]["failure"]
    if failure["kind"] != "poisoned":
        fail(f"poison point failed as {failure['kind']!r}, not "
             f"'poisoned'")
    if failure["attempts"] != 2:
        fail(f"poison point was quarantined after "
             f"{failure['attempts']} deaths, expected exactly 2")
    if report["summary"]["simulated_points"] != \
            report["summary"]["total_points"] - 1:
        fail("poisoning leaked into other points")
    dirs = run_dirs()
    if not dirs:
        fail("no run directory survived the poison sweep")
    state = JobJournal.replay(dirs[-1] / JOURNAL_NAME)
    if state.events.get("job_poisoned") != 1:
        fail(f"journal poisoned-count != 1: {state.events}")
    if state.worker_deaths < 2:
        fail(f"journal shows {state.worker_deaths} worker deaths, "
             f"expected >= 2")
    log(f"phase 4 ok: poison point quarantined after exactly 2 "
        f"worker deaths ({state.summary()})")
    log("all checks passed")


if __name__ == "__main__":
    main()
