#!/usr/bin/env python3
"""Deadlock demo: why delay buffers exist (Fig. 4).

Builds the paper's A/B/C reconvergent graph, shows it deadlocking in
the cycle-level simulator when channels are minimally sized, then shows
the delay-buffer analysis fixing it — with the circular wait printed
for inspection.

Run:  python examples/deadlock_demo.py
"""

import numpy as np

from repro.analysis import analyze_buffers, certify, required_capacities
from repro.core import StencilProgram
from repro.errors import DeadlockError
from repro.graph import StencilGraph
from repro.simulator import SimulatorConfig, simulate

SHAPE = (4, 12, 12)

PROGRAM = {
    "name": "fig4",
    "inputs": {"inp": {"dtype": "float32", "dims": ["i", "j", "k"]}},
    "outputs": ["c"],
    "shape": list(SHAPE),
    "program": {
        # A feeds both B and C; B needs a j-window of A before it can
        # produce anything, so C's direct edge from A runs ahead.
        "a": {"code": "inp[i,j,k] + 1.0", "boundary_condition": "shrink"},
        "b": {"code": "a[i,j-1,k] + a[i,j+1,k]",
              "boundary_condition": "shrink"},
        "c": {"code": "a[i,j,k] + b[i,j,k]",
              "boundary_condition": "shrink"},
    },
}


def main():
    program = StencilProgram.from_json(PROGRAM)
    inputs = {"inp": np.random.default_rng(1).random(
        SHAPE, dtype=np.float32)}
    edges = [(e.src, e.dst, e.data) for e in StencilGraph(program).edges]

    # 1. Minimal channels: the circular wait of Fig. 4.
    print("running with minimal (2-word) channels everywhere...")
    starved = SimulatorConfig(channel_capacities={k: 2 for k in edges},
                              deadlock_window=64)
    try:
        simulate(program, inputs, starved)
        print("  unexpectedly completed!")
    except DeadlockError as error:
        print(f"  DEADLOCK at cycle {error.cycle}:")
        for unit in error.blocked_units:
            print(f"    blocked: {unit}")

    # 2. The static analysis knows these capacities are unsafe.
    analysis = analyze_buffers(program)
    certificate = certify(analysis, {k: 2 for k in edges})
    print(f"\nstatic check agrees:\n  {certificate.explain()}")

    # 3. Delay buffers computed by the analysis (Sec. IV-B).
    print("\ncomputed delay buffers:")
    for key, size in required_capacities(analysis).items():
        if size:
            src, dst, data = key
            print(f"  {src} -> {dst}: {size} words of {data}")

    # 4. With the buffers: streams continuously, matches Eq. 1.
    result = simulate(program, inputs)
    print(f"\nwith computed buffers: completed in {result.cycles} cycles "
          f"(model {result.expected_cycles})")
    print(f"continuous streaming: "
          f"{all(result.output_continuous.values())}")


if __name__ == "__main__":
    main()
