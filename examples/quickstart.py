#!/usr/bin/env python3
"""Quickstart: define a stencil program, analyze it, run it.

This walks the paper's Lst. 1 example through the whole stack: the
JSON program description, the dataflow DAG, the internal/delay-buffer
analysis, generated OpenCL, simulated hardware execution, and
validation against the sequential reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import api

# The paper's Lst. 1 program: five dependent stencils over a 32^3
# domain, mixing 3D and 2D inputs and all three boundary conditions.
PROGRAM = {
    "name": "lst1",
    "inputs": {
        "a0": {"dtype": "float32", "dims": ["i", "j", "k"]},
        "a1": {"dtype": "float32", "dims": ["i", "j", "k"]},
        "a2": {"dtype": "float32", "dims": ["i", "k"]},
    },
    "outputs": ["b4"],
    "shape": [32, 32, 32],
    "program": {
        "b0": {"code": "a0[i,j,k] + a1[i,j,k]",
               "boundary_condition": {
                   "a0": {"type": "constant", "value": 1},
                   "a1": {"type": "copy"}}},
        "b1": {"code": "0.5*(b0[i,j,k] + a2[i,k])",
               "boundary_condition": "shrink"},
        "b2": {"code": "0.5*(b0[i,j,k] - a2[i,k])",
               "boundary_condition": "shrink"},
        "b3": {"code": "b1[i-1,j,k] + b1[i+1,j,k]",
               "boundary_condition": "shrink"},
        "b4": {"code": "b2[i,j,k] + b3[i,j,k]",
               "boundary_condition": "shrink"},
    },
}


def main():
    session = api.session(PROGRAM)
    program = session.program

    print(f"program: {program.name}, {len(program.stencils)} stencils "
          f"over {program.shape}")

    # Buffering analysis (Sec. IV): internal buffers per stencil, delay
    # buffers per edge, accumulated pipeline latency L.
    analysis = session.analysis
    print("\ninternal buffers:")
    for name, buffering in analysis.internal.items():
        for field, buffer in buffering.buffers.items():
            print(f"  {name}: field {field}, {buffer.size} elements, "
                  f"{buffer.num_taps} taps")
    print("delay buffers (non-zero):")
    for (src, dst, data), buffer in analysis.delay_buffers.items():
        if buffer.size:
            print(f"  {src} -> {dst}: {buffer.size} words of {data}")
    print(f"pipeline latency L = {analysis.pipeline_latency} cycles")

    # Generated code (Sec. VI).
    files = session.code_package()
    kernel = files[f"{program.name}_device0.cl"]
    print(f"\ngenerated {sorted(files)}; kernel file is "
          f"{len(kernel.splitlines())} lines of OpenCL")

    # Simulated execution + validation against the reference (Sec. VII).
    rng = np.random.default_rng(0)
    inputs = {
        "a0": rng.random((32, 32, 32), dtype=np.float32),
        "a1": rng.random((32, 32, 32), dtype=np.float32),
        "a2": rng.random((32, 32), dtype=np.float32),
    }
    result = session.run(inputs)
    sim = result.simulation
    print(f"\nsimulated {sim.cycles} cycles "
          f"(Eq. 1 model: {sim.expected_cycles}); "
          f"continuous output: {all(sim.output_continuous.values())}")
    print(f"validated against reference: {result.validated}")
    print(f"b4[2, 2, :4] = {result.outputs['b4'][2, 2, :4]}")


if __name__ == "__main__":
    main()
