#!/usr/bin/env python3
"""Autotune horizontal diffusion with the design-space explorer.

The paper picks its mapping (vectorization width, device placement,
network provisioning) with analytic models before committing a design
to hardware.  ``repro.explore`` closes that loop automatically: it

1. enumerates a configuration space over vectorization width, device
   count, placement strategy (contiguous vs. resource-driven), and
   network parameters;
2. prices every point with the analytic models — Eq. 1 cycles,
   resource fit per device, link bandwidth — and prunes what cannot
   work or cannot win;
3. validates the surviving frontier on the batched cycle-level
   simulator (in parallel, with results cached so repeated sweeps are
   incremental);
4. emits a ranked Pareto report: predicted vs. simulated cycles, model
   error, and the best configuration against the tool's defaults.

Run:  python examples/explore_hdiff.py

The same sweep is available from the shell as::

    python -m repro explore --program hdiff --shape 64,64,32
"""

from repro import api
from repro.explore import ConfigSpace


def main():
    # A reduced domain keeps the sweep interactive; the space still
    # covers W in {1..16}, 1-4 devices, and both placement strategies.
    program = api.resolve_program("hdiff", shape=(64, 64, 32))
    space = ConfigSpace.default_for(program)
    print(f"sweeping {space.size} configurations of "
          f"{program.name} over {program.shape}")

    report = api.explore(program, space=space, strategy="greedy",
                         beam_width=8)
    print("\n".join(report.summary_lines()))

    # The Pareto frontier trades cycles against per-device resources:
    # wide-vector single-device points are fast but resource-hungry;
    # narrow points are cheap but slow.
    print("\nPareto frontier (cycles vs. worst device utilization):")
    for entry in report.pareto_frontier:
        print(f"  {entry.point.label():<12} "
              f"{entry.simulated_cycles:>8} cycles, "
              f"{entry.utilization:.1%} utilization, "
              f"{entry.devices_used} device(s)")

    # Every analytically pruned point names the model that killed it.
    print("\nwhy points were pruned (first three):")
    pruned = [e for e in report.entries if not e.feasible]
    for entry in pruned[:3]:
        print(f"  {entry.point.label():<12} {entry.prune_reason}")

    report.save("explore_hdiff_report.json")
    print("\nfull ranked report written to explore_hdiff_report.json")


if __name__ == "__main__":
    main()
