#!/usr/bin/env python3
"""Multi-FPGA scaling: chained iterative stencils across devices.

Recreates the Sec. VIII-C experiment: grow a chain of Jacobi stencils
until one device fills, then continue the chain over 2/4/8 devices
connected by network streams — and, on a reduced domain, actually
*simulate* a two-device execution with SMI-like links to show the
cut streams working.

Run:  python examples/multi_fpga_scaling.py
"""

import numpy as np

from repro.codegen import generate_package
from repro.distributed import partition_fixed, partition_program
from repro.hardware import STRATIX10, estimate_resources
from repro.perf import model_multi_device, model_performance
from repro.programs import chain
from repro.run import run_reference
from repro.simulator import (
    SimulatorConfig,
    resolve_engine_mode,
    simulate,
)


def main():
    # -- modeled scaling sweep (Fig. 14 shape) ---------------------------
    print("single-device scaling (8-Op Jacobi chain, 2^15 x 32 x 32):")
    for stencils in (16, 32, 64, 96, 112):
        program = chain(stencils, kernel="jacobi3d")
        report = model_performance(program, STRATIX10)
        util = report.resources.utilization
        print(f"  {stencils:4d} stencils: {report.gops:7.1f} GOp/s @ "
              f"{report.frequency_mhz:5.1f} MHz, "
              f"ALM {util.alm:5.1%}, DSP {util.dsp:5.1%}")

    print("\nmulti-device scaling (resource-driven partitioning):")
    for devices in (2, 4, 8):
        stencils = 112 * devices
        program = chain(stencils, kernel="jacobi3d")
        partition = partition_program(program, STRATIX10,
                                      max_devices=devices,
                                      fill_fraction=0.9)
        report = model_multi_device(program, partition, STRATIX10)
        print(f"  {devices} devices, {stencils} stencils "
              f"({partition.num_devices} used): "
              f"{report.gops:7.1f} GOp/s @ {report.frequency_mhz:.0f} MHz")

    # -- a real two-device simulation on a small domain -------------------
    print("\nsimulating a 2-device chain (6 stencils, 8x16x16 domain):")
    program = chain(6, shape=(8, 16, 16))
    placement = {f"s{n}": 0 if n < 3 else 1 for n in range(6)}
    partition = partition_fixed(program, placement)
    print(f"  cut edges: {[key[2] for key in partition.cut_edges]}")

    # A deep wire shows off the batched engine's lifted in-flight
    # bound: link batches are sized by channel capacity, not by the
    # 64-cycle latency ("auto" selects the batched engine for
    # multi-device runs too).
    config = SimulatorConfig(network_latency=64)
    engine = resolve_engine_mode(config, placement, program)
    print(f"  engine: {engine} (network latency "
          f"{config.network_latency} cycles)")

    rng = np.random.default_rng(0)
    inputs = {"inp": rng.random((8, 16, 16), dtype=np.float32)}
    result = simulate(program, inputs, config, device_of=placement)
    reference = run_reference(program, inputs)["s5"]
    ok = np.allclose(result.outputs["s5"], reference.data, rtol=1e-5)
    print(f"  simulated {result.cycles} cycles "
          f"(model: {result.expected_cycles}); outputs match "
          f"reference: {ok}")

    # -- generated code for the distributed design -----------------------
    files = generate_package(program, partition=partition)
    print(f"\ngenerated distributed code package: {sorted(files)}")
    print("  (per-device OpenCL, SMI header + descriptors, host code)")


if __name__ == "__main__":
    main()
