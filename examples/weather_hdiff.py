#!/usr/bin/env python3
"""Application study: COSMO horizontal diffusion (Sec. IX).

Builds the production weather-model stencil program, verifies its
operation census against the paper, applies aggressive stencil fusion,
runs the roofline analysis and the full Tab. II platform comparison,
and simulates the design on a reduced domain to validate functional
correctness against the sequential reference.

Run:  python examples/weather_hdiff.py
"""

import numpy as np

from repro.analysis import analyze_buffers
from repro.perf import (
    arithmetic_intensity_ops_per_byte,
    hdiff_comparison_table,
    operands_per_cycle,
    program_census,
    roofline_gops,
)
from repro.programs import PAPER_CENSUS, horizontal_diffusion
from repro import api
from repro.transforms import aggressive_fusion


def main():
    program = horizontal_diffusion()   # 128 x 128 x 80 benchmark domain
    census = program_census(program)

    print("horizontal diffusion: operation census (per cell)")
    for key, paper in PAPER_CENSUS.items():
        ours = getattr(census, key)
        print(f"  {key:26s} paper {paper:3d}   ours {ours:3d}")

    ai = arithmetic_intensity_ops_per_byte(program)
    print(f"\narithmetic intensity: {ai:.4f} Op/B "
          f"(paper: 65/18 = {65 / 18:.4f})")
    print(f"operands per cycle at W=1: {operands_per_cycle(program):.2f} "
          f"(paper: ~9)")
    print(f"roofline at 58.3 GB/s: {roofline_gops(ai, 58.3):.1f} GOp/s "
          f"(paper: 210.5)")

    # Aggressive stencil fusion (Sec. V-B) coarsens the DAG.
    fused = aggressive_fusion(program)
    la = analyze_buffers(program).pipeline_latency
    print(f"\nfusion: {len(program.stencils)} -> {len(fused.stencils)} "
          f"stencils (L = {la} cycles before fusion)")

    # Tab. II: the cross-platform comparison.
    print("\nTab. II reproduction (128 x 128 x 80, FP32):")
    print(f"  {'platform':42s} {'runtime':>10s} {'perf':>12s} "
          f"{'%roof':>6s}")
    for row in hdiff_comparison_table(program.with_vectorization(8)):
        roof = f"{row.roof_fraction:.0%}" if row.roof_fraction else "-"
        print(f"  {row.platform:42s} {row.runtime_us:8.0f}us "
              f"{row.gops:8.1f}GOp/s {roof:>6s}")

    # Functional validation on a reduced domain (the cycle-level
    # simulator executes every stencil per cell; 128x128x80 would work
    # but takes minutes in pure Python).
    small = horizontal_diffusion(shape=(24, 24, 8))
    session = api.session(small)
    rng = np.random.default_rng(0)
    inputs = {}
    for name, spec in small.inputs.items():
        shape = spec.shape(small.shape, small.index_names)
        inputs[name] = rng.random(shape, dtype=np.float32) * 0.1 + 1.0
    result = session.run(inputs)
    print(f"\nsimulated 24x24x8 domain: {result.simulation.cycles} "
          f"cycles, validated = {result.validated}")


if __name__ == "__main__":
    main()
